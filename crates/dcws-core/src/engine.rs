//! The DCWS server engine — state and control plane.
//!
//! [`ServerEngine`] is *sans-IO*: it never touches sockets or the system
//! clock. A host (the threaded TCP server in `dcws-net`, or the
//! discrete-event simulator in `dcws-sim`) feeds it parsed requests and
//! timestamps, performs the network actions it emits ([`TickOutput`]), and
//! ships its responses. This one engine plays both roles of the paper's
//! fully symmetric design: *home server* for the documents it was given via
//! [`ServerEngine::publish`], and *co-op server* for documents other homes
//! migrate to it.

use crate::config::ServerConfig;
use crate::events::{EngineEvent, EventLog, EventRecord, RevokeReason};
use crate::naming::migrate_url;
use crate::readpath::ReadPath;
use crate::stats::EngineStats;
use crate::store::DocStore;
use dcws_cache::{CacheConfig, CachedDoc, DocCache, Evicted, SizeHistogram};
use dcws_graph::{
    select_for_migration, DocKind, GlobalLoadTable, LoadInfo, LocalDocGraph, Location, RateWindow,
    ServerId,
};
use dcws_http::{http_date, Body, Headers, LoadReport, Request};
use std::collections::{HashMap, HashSet};
use std::sync::Arc;

/// Key for a co-op-held document: `(home server, original path)`.
pub(crate) type CoopKey = (ServerId, String);

/// Cache key for a co-op-held copy: `"{home} {path}"`. A space can
/// appear in neither a `host:port` server id nor an URL path, so the
/// encoding is unambiguous.
pub(crate) fn coop_cache_key(home: &ServerId, path: &str) -> String {
    format!("{home} {path}")
}

/// Split a co-op cache key back into `(home, path)`.
pub(crate) fn split_coop_key(key: &str) -> Option<(ServerId, String)> {
    let (home, path) = key.split_once(' ')?;
    Some((ServerId::new(home), path.to_string()))
}

/// Regen-cache key for the home-serving (relative-link) variant.
pub(crate) fn home_variant_key(name: &str) -> String {
    format!("home {name}")
}

/// Regen-cache key for the pull/push (absolute-link) variant.
pub(crate) fn pull_variant_key(name: &str) -> String {
    format!("pull {name}")
}

/// Maximum entries staged for one-shot serving when a pulled document
/// exceeds the co-op cache's per-shard budget slice.
pub(crate) const PENDING_SERVE_CAP: usize = 16;

/// Split the configured total budget between the two caches, half
/// each, without losing bytes to integer division.
fn split_cache_budget(total: u64) -> (u64, u64) {
    let coop = total / 2;
    (total - coop, coop)
}

/// Network actions the host must perform after a [`ServerEngine::tick`].
#[derive(Debug, Default)]
pub struct TickOutput {
    /// Documents logically migrated this tick: `(doc, co-op)`.
    pub migrated: Vec<(String, ServerId)>,
    /// Migrations revoked this tick: `(doc, former co-op)`.
    pub revoked: Vec<(String, ServerId)>,
    /// Artificial pinger transfers to send: `(peer, request)` (§4.5).
    pub pings: Vec<(ServerId, Request)>,
    /// Co-op validation re-requests to send: `(home, request)` (§4.5).
    pub validations: Vec<(ServerId, Request)>,
    /// Eager-migration pushes to send (ablation): `(co-op, request)`.
    pub pushes: Vec<(ServerId, Request)>,
}

impl TickOutput {
    /// Whether the tick produced no work for the host.
    pub fn is_empty(&self) -> bool {
        self.migrated.is_empty()
            && self.revoked.is_empty()
            && self.pings.is_empty()
            && self.validations.is_empty()
            && self.pushes.is_empty()
    }
}

/// The DCWS engine for one server.
pub struct ServerEngine {
    pub(crate) id: ServerId,
    pub(crate) cfg: ServerConfig,
    pub(crate) ldg: LocalDocGraph,
    pub(crate) glt: GlobalLoadTable,
    /// Permanent original copies of home documents (§3.2). Regeneration
    /// always starts from these, so link rewrites never compound.
    pub(crate) originals: Box<dyn DocStore>,
    /// Regenerated bodies, LRU-bounded: home-serving (relative-link) and
    /// pull (absolute-link) variants of each document, keyed by
    /// [`home_variant_key`] / [`pull_variant_key`] and validated per
    /// version, so repeated serves of an unchanged document do not
    /// re-run the §4.3 parse/reconstruct.
    pub(crate) regen_cache: Arc<DocCache>,
    /// Content version per home document; bumped on publish/regenerate.
    pub(crate) versions: HashMap<String, u64>,
    /// Last-Modified time per home document (engine ms), carried on the
    /// wire as an RFC 1123 `Last-Modified` header.
    pub(crate) modified: HashMap<String, u64>,
    /// Home documents whose current served form has rewritten links: an
    /// evicted body must be regenerated, while a never-dirtied document
    /// serves its pristine original without touching the cache.
    pub(crate) rewritten: HashSet<String>,
    /// Copies held in the co-op role, keyed by [`coop_cache_key`].
    /// Revoked copies become negative entries (crash insurance, §4.5).
    pub(crate) coop_cache: Arc<DocCache>,
    /// One-shot staging for pulled documents too large for the co-op
    /// cache: consumed by the next request, bounded FIFO.
    pub(crate) pending_serve: Vec<(CoopKey, CachedDoc)>,
    /// Sizes of bodies received by this server's co-op role pulls.
    pub(crate) pull_sizes: SizeHistogram,
    /// Moved tombstones: a pull was answered with a redirect, so requests
    /// for this key 301 straight to the current location until the
    /// tombstone expires (T_val) and we re-check with the home.
    pub(crate) coop_moved: HashMap<CoopKey, (dcws_http::Url, u64)>,
    /// Hot-replication extension: extra co-ops per migrated document.
    pub(crate) replicas: HashMap<String, Vec<ServerId>>,
    pub(crate) window: RateWindow,
    last_stat_ms: u64,
    last_migration_ms: u64,
    coop_last_migration: HashMap<ServerId, u64>,
    last_ping_ms: HashMap<ServerId, u64>,
    ping_failures: HashMap<ServerId, u32>,
    pub(crate) dead_peers: HashSet<ServerId>,
    /// The concurrent read-mostly serve path: primed/invalidated by this
    /// engine under its exclusive lock, read by transport workers without
    /// it. Its mailboxes are drained every [`tick`](Self::tick).
    pub(crate) read: Arc<ReadPath>,
    pub(crate) stats: EngineStats,
    pub(crate) events: EventLog,
    /// Last timestamp injected via [`handle_request`](crate::serve) or
    /// [`tick`](Self::tick); stamps event records emitted from paths that
    /// carry no explicit time parameter.
    pub(crate) now_ms: u64,
}

impl ServerEngine {
    /// Create an engine for server `id` with the given configuration and
    /// original-document store (usually empty; fill via [`Self::publish`]).
    pub fn new(id: ServerId, cfg: ServerConfig, originals: Box<dyn DocStore>) -> Self {
        let window_ms = cfg.stat_interval_ms.max(1_000);
        let (regen_budget, coop_budget) = split_cache_budget(cfg.cache_budget_bytes);
        let coop_cache = Arc::new(DocCache::new(CacheConfig::new(coop_budget)));
        let regen_cache = Arc::new(DocCache::new(CacheConfig::new(regen_budget)));
        // Admission rule: a single Sequoia-class object must not evict a
        // shard's whole small-document working set (it streams instead).
        coop_cache.set_admit_fraction(cfg.cache_admit_fraction);
        regen_cache.set_admit_fraction(cfg.cache_admit_fraction);
        let read = Arc::new(ReadPath::new(id.clone(), coop_cache.clone(), regen_budget));
        ServerEngine {
            glt: GlobalLoadTable::new(id.clone()),
            id,
            ldg: LocalDocGraph::new(),
            originals,
            regen_cache,
            versions: HashMap::new(),
            modified: HashMap::new(),
            rewritten: HashSet::new(),
            coop_cache,
            read,
            pending_serve: Vec::new(),
            pull_sizes: SizeHistogram::new(),
            coop_moved: HashMap::new(),
            replicas: HashMap::new(),
            window: RateWindow::new(window_ms, 10),
            last_stat_ms: 0,
            last_migration_ms: 0,
            coop_last_migration: HashMap::new(),
            last_ping_ms: HashMap::new(),
            ping_failures: HashMap::new(),
            dead_peers: HashSet::new(),
            stats: EngineStats::default(),
            events: EventLog::new(cfg.event_log_capacity),
            now_ms: 0,
            cfg,
        }
    }

    /// This server's identity.
    pub fn id(&self) -> &ServerId {
        &self.id
    }

    /// The configuration in force.
    pub fn config(&self) -> &ServerConfig {
        &self.cfg
    }

    /// Counter snapshot: the exclusive path's counters folded together
    /// with the read path's, so totals stay whole no matter which path
    /// served a request.
    pub fn stats(&self) -> EngineStats {
        let mut s = self.stats;
        let r = self.read.snapshot();
        s.requests += r.requests;
        s.served_home += r.served_home;
        s.served_coop += r.served_coop;
        s.redirects += r.redirects;
        s.conditional_not_modified += r.conditional_not_modified;
        s.bytes_sent += r.bytes_sent;
        s.stale_serves += r.stale_serves;
        s
    }

    /// The shared read-mostly serve path. Transport hosts clone the `Arc`
    /// and call [`ReadPath::try_serve`] before taking the engine lock.
    pub fn read_path(&self) -> &Arc<ReadPath> {
        &self.read
    }

    /// Read access to the structured event log (see [`EventLog`]).
    pub fn events(&self) -> &EventLog {
        &self.events
    }

    /// Removes and returns all retained event records, oldest-first.
    /// Harnesses that archive the full causal trace (e.g. the simulator)
    /// call this periodically; `seq` numbers keep running across drains.
    pub fn drain_events(&mut self) -> Vec<EventRecord> {
        self.events.drain()
    }

    /// The most recent `n` event records, oldest-first, without
    /// disturbing the ring (used by the `/dcws/status` endpoint).
    pub fn recent_events(&self, n: usize) -> Vec<EventRecord> {
        self.events.recent(n)
    }

    /// Record an event at the engine's current injected time.
    pub(crate) fn emit(&mut self, event: EngineEvent) {
        self.events.record(self.now_ms, event);
    }

    /// Read access to the local document graph.
    pub fn ldg(&self) -> &LocalDocGraph {
        &self.ldg
    }

    /// Read access to the global load table.
    pub fn glt(&self) -> &GlobalLoadTable {
        &self.glt
    }

    /// Number of documents currently held in the co-op role (including
    /// revoked copies retained as crash insurance).
    pub fn coop_doc_count(&self) -> usize {
        self.coop_cache.len()
    }

    /// The LRU cache of regenerated bodies (home and pull variants).
    pub fn regen_cache(&self) -> &DocCache {
        &self.regen_cache
    }

    /// The LRU cache of co-op-held document copies.
    pub fn coop_cache(&self) -> &DocCache {
        &self.coop_cache
    }

    /// Histogram of body sizes this server's co-op role has pulled.
    pub fn pull_size_histogram(&self) -> &SizeHistogram {
        &self.pull_sizes
    }

    /// Total bytes of permanent original documents (the corpus size),
    /// as reported by the backing store.
    pub fn corpus_bytes(&self) -> u64 {
        self.originals.total_bytes()
    }

    /// Re-split `total` bytes across the two caches (half each) and
    /// evict down to the new budgets. Lets a server pick its budget
    /// after the corpus is published (e.g. corpus/4).
    pub fn set_cache_budget(&mut self, total: u64) {
        self.cfg.cache_budget_bytes = total;
        let (regen_budget, coop_budget) = split_cache_budget(total);
        self.read.set_table_budget(regen_budget);
        let evicted = self.regen_cache.set_budget(regen_budget);
        self.note_evictions("regen", evicted);
        let evicted = self.coop_cache.set_budget(coop_budget);
        self.note_evictions("coop", evicted);
    }

    /// Record an eviction event for every entry `cache` pushed out.
    pub(crate) fn note_evictions(&mut self, cache: &'static str, evicted: Vec<Evicted>) {
        for e in evicted {
            self.emit(EngineEvent::CacheEvict {
                cache,
                key: e.key,
                bytes: e.bytes,
            });
        }
    }

    /// Last-Modified time (engine ms) of home document `name`; zero for
    /// documents never published here.
    pub fn doc_modified_ms(&self, name: &str) -> u64 {
        self.modified.get(name).copied().unwrap_or(0)
    }

    /// Register a peer server in the group (static membership, as in the
    /// paper's experiments).
    pub fn add_peer(&mut self, peer: ServerId) {
        if peer != self.id {
            self.glt.add_peer(peer);
        }
    }

    /// Publish a document on this (home) server: store the permanent
    /// original, parse hyperlinks if HTML, and insert the LDG tuple. This
    /// is the "scanning its disk and parsing the documents" initialization
    /// of §3.3, and also the author-update path (§4.5 case 1):
    /// republishing bumps the content version so co-op validation picks up
    /// the change.
    pub fn publish(&mut self, name: &str, bytes: Vec<u8>, kind: DocKind, entry_point: bool) {
        let link_to = if kind == DocKind::Html {
            self.extract_site_links(name, &bytes)
        } else {
            Vec::new()
        };
        let size = bytes.len() as u64;
        if self.originals.put(name, bytes).is_err() {
            // The permanent original could not be stored durably (§3.2's
            // robustness copy). Serving continues from caches; the counter
            // makes the loss visible instead of silent.
            self.stats.store_put_failures += 1;
        }
        self.read.invalidate(name);
        self.regen_cache.remove(&home_variant_key(name));
        self.regen_cache.remove(&pull_variant_key(name));
        // The fresh original is the current form again (until a
        // migration dirties it); its change time is now.
        self.rewritten.remove(name);
        self.modified.insert(name.to_string(), self.now_ms);
        *self.versions.entry(name.to_string()).or_insert(0) += 1;
        let was_migrated = self
            .ldg
            .get(name)
            .map(|e| e.location.clone())
            .filter(|l| !l.is_home());
        self.ldg.insert_doc(name, size, kind, link_to, entry_point);
        // Republishing a migrated document: restore its migrated location;
        // the version bump makes the co-op refresh at next validation.
        if let Some(loc) = was_migrated {
            if let Some(e) = self.ldg.get_mut(name) {
                e.location = loc;
            }
        }
    }

    /// Resolve a document's outgoing references to site-local paths.
    fn extract_site_links(&self, name: &str, bytes: &[u8]) -> Vec<String> {
        let html = String::from_utf8_lossy(bytes);
        let base = match dcws_http::Url::relative(name) {
            Ok(u) => u,
            Err(_) => return Vec::new(),
        };
        let mut out = Vec::new();
        let mut seen = HashSet::new();
        for l in dcws_html::extract_links(&html) {
            let Ok(u) = base.join(&l.url) else { continue };
            // Absolute links to other hosts are external; absolute links to
            // ourselves collapse to their path.
            if let Some(host) = u.host() {
                let target = ServerId::new(format!("{host}:{}", u.port()));
                if target != self.id {
                    continue;
                }
            }
            let p = u.path().to_string();
            if p != name && seen.insert(p.clone()) {
                out.push(p);
            }
        }
        out
    }

    /// Ingest piggybacked load reports from any received message (§3.3).
    /// Hearing from a dead-listed peer resurrects it.
    pub fn ingest_reports(&mut self, headers: &Headers) {
        for r in LoadReport::extract_all(headers) {
            self.ingest_report(&r);
        }
    }

    /// Merge one load report into the GLT (also the drain path for
    /// reports the read path deferred to its mailbox).
    pub(crate) fn ingest_report(&mut self, r: &LoadReport) {
        let sid = ServerId::new(r.server.clone());
        if sid == self.id {
            return;
        }
        if self.glt.update(
            sid.clone(),
            LoadInfo {
                cps: r.cps,
                bps: r.bps,
                ts_ms: r.ts_ms,
            },
        ) {
            if self.dead_peers.remove(&sid) {
                self.emit(EngineEvent::PeerResurrected { peer: sid.clone() });
            }
            self.ping_failures.remove(&sid);
        }
    }

    /// Attach up to `piggyback_max` load reports (own entry first) to an
    /// outgoing inter-server message.
    pub fn attach_reports(&mut self, headers: &mut Headers, now_ms: u64) {
        let (cps, bps) = self.window.rates(now_ms);
        self.glt.set_self(cps, bps, now_ms);
        let mut n = 0;
        LoadReport {
            server: self.id.to_string(),
            cps,
            bps,
            ts_ms: now_ms,
        }
        .attach(headers);
        n += 1;
        for (sid, info) in self.glt.snapshot() {
            if n >= self.cfg.piggyback_max {
                break;
            }
            if sid == self.id {
                continue;
            }
            LoadReport {
                server: sid.to_string(),
                cps: info.cps,
                bps: info.bps,
                ts_ms: info.ts_ms,
            }
            .attach(headers);
            n += 1;
        }
    }

    /// Periodic control-plane work. Call at least every few hundred
    /// simulated/real milliseconds; internal timers gate the actual work.
    pub fn tick(&mut self, now_ms: u64) -> TickOutput {
        self.now_ms = self.now_ms.max(now_ms);
        // Fold in everything the read path did since the last tick —
        // traffic into the rate window, hits into the LDG, deferred
        // piggyback reports into the GLT — *before* the statistics
        // branch below reads any of them.
        self.drain_read_path(now_ms);
        let mut out = TickOutput::default();
        // Statistics recalculation + migration, every T_st.
        if now_ms.saturating_sub(self.last_stat_ms) >= self.cfg.stat_interval_ms {
            self.last_stat_ms = now_ms;
            self.ldg.rotate_hits();
            let (cps, bps) = self.window.rates(now_ms);
            self.glt.set_self(cps, bps, now_ms);
            self.consider_remigration(now_ms, &mut out);
            self.consider_migration(now_ms, &mut out);
        }
        // Pinger: artificial transfers toward stale peers, every T_pi.
        for peer in self.glt.stale_peers(now_ms, self.cfg.pinger_interval_ms) {
            if self.dead_peers.contains(&peer) {
                continue;
            }
            let last = self.last_ping_ms.get(&peer).copied().unwrap_or(0);
            if now_ms.saturating_sub(last) < self.cfg.pinger_interval_ms {
                continue;
            }
            self.last_ping_ms.insert(peer.clone(), now_ms);
            self.stats.pings_sent += 1;
            let mut req = Request::head("/").with_header("X-DCWS-Ping", "1");
            self.attach_reports(&mut req.headers, now_ms);
            out.pings.push((peer, req));
        }
        // Co-op validation: re-request copies older than T_val.
        for (key, meta) in self.coop_cache.entries_meta() {
            if meta.negative
                || now_ms.saturating_sub(meta.fetched_at) < self.cfg.validation_interval_ms
            {
                continue;
            }
            let Some((home, path)) = split_coop_key(&key) else {
                continue;
            };
            // Re-arm so the request isn't re-emitted every tick while the
            // response is in flight; a lost response retries next T_val.
            // A per-document jitter de-synchronizes the re-arm: without
            // it, every copy validated in the same tick stays in lockstep
            // forever, and the periodic wave of validations can swamp the
            // home server's socket queue.
            let jitter = path.bytes().fold(0xcbf2_9ce4_8422_2325u64, |a, b| {
                (a ^ b as u64).wrapping_mul(0x100_0000_01b3)
            }) % (self.cfg.validation_interval_ms / 4).max(1);
            self.coop_cache.touch(&key, now_ms.saturating_sub(jitter));
            let mut req = Request::get(path.as_str())
                .with_header("X-DCWS-Validate", &meta.version.to_string())
                .with_header("X-DCWS-Coop", self.id.as_str())
                .with_header("If-Modified-Since", &http_date(meta.modified_ms));
            self.attach_reports(&mut req.headers, now_ms);
            out.validations.push((home, req));
        }
        // Refresh the load reports the read path hands out (self entry
        // first, then the GLT snapshot, as attach_reports would).
        let snapshot = self.report_snapshot(now_ms);
        self.read.publish_reports(snapshot);
        out
    }

    /// Drain the read path's mailboxes into the engine's own state.
    fn drain_read_path(&mut self, now_ms: u64) {
        let (conns, bytes) = self.read.take_traffic();
        if conns > 0 {
            self.window.record_n(now_ms, conns, bytes);
        }
        for (path, hits, bytes) in self.read.take_hits() {
            self.ldg.record_hits(&path, hits, bytes);
        }
        for r in self.read.take_reports() {
            self.ingest_report(&r);
        }
    }

    /// The reports [`Self::attach_reports`] would attach right now: own
    /// entry first, then the freshest GLT rows up to `piggyback_max`.
    fn report_snapshot(&mut self, now_ms: u64) -> Vec<LoadReport> {
        let (cps, bps) = self.window.rates(now_ms);
        self.glt.set_self(cps, bps, now_ms);
        let mut out = vec![LoadReport {
            server: self.id.to_string(),
            cps,
            bps,
            ts_ms: now_ms,
        }];
        for (sid, info) in self.glt.snapshot() {
            if out.len() >= self.cfg.piggyback_max {
                break;
            }
            if sid == self.id {
                continue;
            }
            out.push(LoadReport {
                server: sid.to_string(),
                cps: info.cps,
                bps: info.bps,
                ts_ms: info.ts_ms,
            });
        }
        out
    }

    /// T_home: periodically reassess standing migrations. A document on a
    /// dead co-op is revoked home; a document on a badly overloaded co-op
    /// is **re-targeted** directly to the least-loaded server (the paper's
    /// "abandon a migration and re-migrate the file to a different co-op
    /// server"). At most one re-target per statistics tick — re-migration
    /// dirties every linking document, so storms of them would melt the
    /// home server in regeneration work.
    fn consider_remigration(&mut self, now_ms: u64, out: &mut TickOutput) {
        let metric = self.cfg.balance_metric;
        let mut due: Vec<(String, ServerId, f64)> = self
            .ldg
            .all_migrated()
            .into_iter()
            .filter_map(|(name, coop)| {
                let at = self.ldg.get(&name)?.migrated_at?;
                if now_ms.saturating_sub(at) < self.cfg.remigration_interval_ms {
                    return None;
                }
                let load = self.glt.get(&coop).map(|i| i.value(metric)).unwrap_or(0.0);
                Some((name, coop, load))
            })
            .collect();
        if due.is_empty() {
            return;
        }
        // Worst-loaded co-op's documents first.
        due.sort_by(|a, b| b.2.partial_cmp(&a.2).unwrap_or(std::cmp::Ordering::Equal));
        let mut exclude: Vec<ServerId> = self.dead_peers.iter().cloned().collect();
        for (coop, t) in &self.coop_last_migration {
            if now_ms.saturating_sub(*t) < self.cfg.coop_migration_interval_ms {
                exclude.push(coop.clone());
            }
        }
        let mut acted = false;
        for (name, coop, coop_load) in due {
            if self.dead_peers.contains(&coop) {
                self.revoke_doc(&name, out, RevokeReason::DeadCoop);
                continue;
            }
            let mut done = false;
            if !acted {
                let mut excl = exclude.clone();
                excl.push(coop.clone());
                if let Some(target) = self.glt.least_loaded(metric, &excl) {
                    let target_load = self
                        .glt
                        .get(&target)
                        .map(|i| i.value(metric))
                        .unwrap_or(0.0);
                    if coop_load > 2.0 * self.cfg.overload_ratio * target_load.max(0.001) {
                        let dirtied = self.ldg.migrate(&name, target.clone(), now_ms);
                        self.invalidate_routes(&name, &dirtied);
                        self.coop_last_migration.insert(target.clone(), now_ms);
                        self.stats.remigrations += 1;
                        self.emit(EngineEvent::Remigrated {
                            doc: name.clone(),
                            from: coop.clone(),
                            to: target.clone(),
                            from_load: coop_load,
                            to_load: target_load,
                        });
                        if self.cfg.eager_migration {
                            out.pushes
                                .push((target.clone(), self.make_push_request(&name, now_ms)));
                        }
                        out.migrated.push((name.clone(), target));
                        out.revoked.push((name.clone(), coop.clone()));
                        acted = true;
                        done = true;
                    }
                }
            }
            if !done {
                // Keep the migration; re-arm the T_home timer.
                if let Some(e) = self.ldg.get_mut(&name) {
                    e.migrated_at = Some(now_ms);
                }
            }
        }
    }

    /// Revoke one migration: LDG back to Home, sources dirtied, stats.
    fn revoke_doc(&mut self, name: &str, out: &mut TickOutput, reason: RevokeReason) {
        let coop = match self.ldg.get(name).map(|e| e.location.clone()) {
            Some(Location::Coop(c)) => c,
            _ => return,
        };
        let dirtied = self.ldg.revoke(name);
        self.invalidate_routes(name, &dirtied);
        self.replicas.remove(name);
        self.stats.revocations += 1;
        self.emit(EngineEvent::MigrationRevoked {
            doc: name.to_string(),
            coop: coop.clone(),
            reason,
        });
        out.revoked.push((name.to_string(), coop));
    }

    /// The migration decision (§4.2): when overloaded relative to the
    /// least-loaded peer, run Algorithm 1 and migrate one document —
    /// respecting the one-per-T_st home rate and one-per-T_coop per-co-op
    /// rate limits of Table 1.
    fn consider_migration(&mut self, now_ms: u64, out: &mut TickOutput) {
        if now_ms.saturating_sub(self.last_migration_ms) < self.cfg.stat_interval_ms
            && self.last_migration_ms != 0
        {
            return;
        }
        let me = self.glt.self_info();
        if me.cps < self.cfg.min_cps_to_migrate {
            return;
        }
        let metric = self.cfg.balance_metric;
        // Exclude dead peers and co-ops inside their T_coop window.
        let mut exclude: Vec<ServerId> = self.dead_peers.iter().cloned().collect();
        for (coop, t) in &self.coop_last_migration {
            if now_ms.saturating_sub(*t) < self.cfg.coop_migration_interval_ms {
                exclude.push(coop.clone());
            }
        }
        let Some(target) = self.glt.least_loaded(metric, &exclude) else {
            return;
        };
        let target_load = self
            .glt
            .get(&target)
            .map(|i| i.value(metric))
            .unwrap_or(0.0);
        if me.value(metric) <= self.cfg.overload_ratio * target_load {
            return;
        }
        let selected = if self.cfg.naive_selection {
            dcws_graph::select_hottest(&self.ldg)
        } else {
            select_for_migration(&self.ldg, self.cfg.selection_threshold)
        };
        let Some(doc) = selected else {
            return;
        };
        let hits = self.ldg.get(&doc).map(|e| e.hits).unwrap_or(0);
        let dirtied = self.ldg.migrate(&doc, target.clone(), now_ms);
        self.invalidate_routes(&doc, &dirtied);
        self.coop_last_migration.insert(target.clone(), now_ms);
        self.last_migration_ms = now_ms;
        self.stats.migrations += 1;
        self.emit(EngineEvent::MigrationStarted {
            doc: doc.clone(),
            coop: target.clone(),
            self_load: me.value(metric),
            coop_load: target_load,
        });
        if self.cfg.eager_migration {
            out.pushes
                .push((target.clone(), self.make_push_request(&doc, now_ms)));
        }
        out.migrated.push((doc.clone(), target.clone()));

        // Hot-replication extension (§6 future work): a document drawing a
        // large fraction of our hits gets extra replicas at once.
        if let Some(hr) = self.cfg.hot_replication.clone() {
            let total: u64 = self.ldg.iter().map(|e| e.hits).sum();
            if total > 0 && hits as f64 / total as f64 >= hr.hot_fraction {
                let mut replicas = vec![target.clone()];
                let mut excl = exclude.clone();
                excl.push(target.clone());
                while replicas.len() < hr.max_replicas {
                    let Some(extra) = self.glt.least_loaded(metric, &excl) else {
                        break;
                    };
                    excl.push(extra.clone());
                    self.coop_last_migration.insert(extra.clone(), now_ms);
                    self.stats.replicas_created += 1;
                    self.emit(EngineEvent::ReplicaCreated {
                        doc: doc.clone(),
                        coop: extra.clone(),
                    });
                    if self.cfg.eager_migration {
                        out.pushes
                            .push((extra.clone(), self.make_push_request(&doc, now_ms)));
                    }
                    out.migrated.push((doc.clone(), extra.clone()));
                    replicas.push(extra);
                }
                if replicas.len() > 1 {
                    self.replicas.insert(doc, replicas);
                }
            }
        }
    }

    /// Which co-op serves `doc` for a link appearing in `source` — spreads
    /// replica load deterministically by source document.
    pub(crate) fn replica_for(&self, doc: &str, source_key: &str) -> Option<ServerId> {
        match self.ldg.get(doc).map(|e| e.location.clone()) {
            Some(Location::Coop(primary)) => match self.replicas.get(doc) {
                Some(reps) if !reps.is_empty() => {
                    let h = source_key.bytes().fold(0xcbf2_9ce4_8422_2325u64, |a, b| {
                        (a ^ b as u64).wrapping_mul(0x100_0000_01b3)
                    });
                    Some(reps[(h % reps.len() as u64) as usize].clone())
                }
                _ => Some(primary),
            },
            _ => None,
        }
    }

    /// Build the eager-migration push carrying a document to a co-op.
    fn make_push_request(&mut self, doc: &str, now_ms: u64) -> Request {
        let (bytes, version, content_type) = self.pull_content(doc);
        let mut req = Request {
            method: dcws_http::Method::Post,
            target: doc.to_string(),
            version: dcws_http::Version::Http11,
            headers: Headers::new(),
            body: Body::empty(),
        }
        .with_header("X-DCWS-Push", "1")
        .with_header("X-DCWS-Home", self.id.as_str())
        .with_header("X-DCWS-Version", &version.to_string())
        .with_header("Last-Modified", &http_date(self.doc_modified_ms(doc)))
        .with_header("Content-Type", &content_type)
        .with_header(
            dcws_http::CHECKSUM_HEADER,
            &dcws_http::body_checksum(&bytes),
        )
        .with_body(bytes);
        self.attach_reports(&mut req.headers, now_ms);
        req
    }

    /// Build the lazy pull request a co-op sends to fetch a migrated
    /// document from its home (§4.2 case 1).
    pub fn make_pull_request(&mut self, path: &str, now_ms: u64) -> Request {
        let mut req = Request::get(path)
            .with_header("X-DCWS-Pull", "1")
            .with_header("X-DCWS-Coop", self.id.as_str());
        self.attach_reports(&mut req.headers, now_ms);
        req
    }

    /// Record a ping outcome. After `ping_failure_limit` consecutive
    /// failures the peer is declared dead: its documents are revoked and it
    /// stops being a migration target until heard from again.
    pub fn ping_result(
        &mut self,
        peer: &ServerId,
        ok: bool,
        headers: Option<&Headers>,
    ) -> Vec<String> {
        if ok {
            self.ping_failures.remove(peer);
            if let Some(h) = headers {
                self.ingest_reports(h);
            }
            return Vec::new();
        }
        let n = self.ping_failures.entry(peer.clone()).or_insert(0);
        *n += 1;
        if *n < self.cfg.ping_failure_limit {
            return Vec::new();
        }
        self.declare_peer_dead(peer)
    }

    /// Declare a peer dead (§4.5 case 3): recall every document migrated
    /// there. Returns the recalled document names.
    pub fn declare_peer_dead(&mut self, peer: &ServerId) -> Vec<String> {
        if self.dead_peers.insert(peer.clone()) {
            self.stats.peers_declared_dead += 1;
        }
        let docs = self.ldg.migrated_to(peer);
        for d in &docs {
            let dirtied = self.ldg.revoke(d);
            self.invalidate_routes(d, &dirtied);
            self.replicas.remove(d);
            self.stats.revocations += 1;
            self.emit(EngineEvent::MigrationRevoked {
                doc: d.clone(),
                coop: peer.clone(),
                reason: RevokeReason::DeadCoop,
            });
        }
        self.emit(EngineEvent::PeerDeclaredDead {
            peer: peer.clone(),
            docs_recalled: docs.len() as u64,
        });
        docs
    }

    /// Migrated-document URL (naming convention of §3.4) for `doc` as seen
    /// from `source_key` (replica spreading).
    pub(crate) fn migrated_doc_url(&self, doc: &str, source_key: &str) -> Option<dcws_http::Url> {
        let coop = self.replica_for(doc, source_key)?;
        migrate_url(&coop, &self.id, doc).ok()
    }

    /// Drop the serve-table routes a location change staled: the moved
    /// document itself plus every linking source the LDG dirtied.
    pub(crate) fn invalidate_routes(&self, doc: &str, dirtied: &[String]) {
        self.read.invalidate(doc);
        for d in dirtied {
            self.read.invalidate(d);
        }
    }

    /// Export the standing migration state as `doc<TAB>coop` lines, for
    /// persisting across a restart. Replica sets are exported as multiple
    /// lines per document (primary first).
    pub fn export_migrations(&self) -> String {
        let mut out = String::new();
        for (doc, coop) in self.ldg.all_migrated() {
            match self.replicas.get(&doc) {
                Some(reps) => {
                    for r in reps {
                        out.push_str(&format!("{doc}\t{r}\n"));
                    }
                }
                None => out.push_str(&format!("{doc}\t{coop}\n")),
            }
        }
        out
    }

    /// Restore migration state exported by [`Self::export_migrations`]
    /// after the documents have been re-published (a warm restart:
    /// without this, a restarted home forgets every migration and recalls
    /// the whole site). Unknown documents and malformed lines are
    /// skipped; sources are re-dirtied so regenerated pages point at the
    /// co-ops again. Returns how many documents were restored.
    pub fn restore_migrations(&mut self, exported: &str, now_ms: u64) -> usize {
        let mut per_doc: HashMap<String, Vec<ServerId>> = HashMap::new();
        let mut order: Vec<String> = Vec::new();
        for line in exported.lines() {
            let Some((doc, coop)) = line.split_once('\t') else {
                continue;
            };
            if doc.is_empty() || coop.is_empty() || !self.ldg.contains(doc) {
                continue;
            }
            let entry = per_doc.entry(doc.to_string()).or_default();
            if entry.is_empty() {
                order.push(doc.to_string());
            }
            entry.push(ServerId::new(coop));
        }
        let mut restored = 0;
        for doc in order {
            let reps = per_doc.remove(&doc).expect("inserted above");
            let primary = reps[0].clone();
            let dirtied = self.ldg.migrate(&doc, primary, now_ms);
            self.invalidate_routes(&doc, &dirtied);
            if reps.len() > 1 {
                self.replicas.insert(doc, reps);
            }
            restored += 1;
        }
        restored
    }
}
