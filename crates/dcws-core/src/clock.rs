//! Time abstraction.
//!
//! The engine never reads the system clock directly: the real server
//! injects [`SystemClock`]; the discrete-event simulator injects a
//! [`ManualClock`] it advances in virtual time. All engine timers (T_st,
//! T_pi, T_val, T_home, T_coop) are expressed in clock milliseconds.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// A monotonic millisecond clock.
pub trait Clock: Send + Sync {
    /// Milliseconds since an arbitrary epoch; must be non-decreasing.
    fn now_ms(&self) -> u64;
}

/// Wall-clock time from a process-local monotonic epoch.
#[derive(Debug)]
pub struct SystemClock {
    epoch: Instant,
}

impl SystemClock {
    /// A clock whose epoch is "now".
    pub fn new() -> Self {
        SystemClock {
            epoch: Instant::now(),
        }
    }
}

impl Default for SystemClock {
    fn default() -> Self {
        Self::new()
    }
}

impl Clock for SystemClock {
    fn now_ms(&self) -> u64 {
        self.epoch.elapsed().as_millis() as u64
    }
}

/// A hand-advanced clock for simulation and tests. Cloning shares the
/// underlying time cell.
#[derive(Debug, Clone, Default)]
pub struct ManualClock {
    t: Arc<AtomicU64>,
}

impl ManualClock {
    /// A clock starting at 0 ms.
    pub fn new() -> Self {
        Self::default()
    }

    /// Set the absolute time. Panics if moving backwards in debug builds.
    pub fn set_ms(&self, t: u64) {
        debug_assert!(t >= self.t.load(Ordering::Relaxed), "clock moved backwards");
        self.t.store(t, Ordering::Relaxed);
    }

    /// Advance by `dt` milliseconds; returns the new time.
    pub fn advance_ms(&self, dt: u64) -> u64 {
        self.t.fetch_add(dt, Ordering::Relaxed) + dt
    }
}

impl Clock for ManualClock {
    fn now_ms(&self) -> u64 {
        self.t.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn system_clock_monotonic() {
        let c = SystemClock::new();
        let a = c.now_ms();
        let b = c.now_ms();
        assert!(b >= a);
    }

    #[test]
    fn manual_clock_advances() {
        let c = ManualClock::new();
        assert_eq!(c.now_ms(), 0);
        assert_eq!(c.advance_ms(100), 100);
        c.set_ms(500);
        assert_eq!(c.now_ms(), 500);
    }

    #[test]
    fn manual_clock_clones_share_time() {
        let a = ManualClock::new();
        let b = a.clone();
        a.advance_ms(42);
        assert_eq!(b.now_ms(), 42);
    }
}
