//! Document content storage.
//!
//! The home server keeps a *permanent copy of the original document* for
//! "consistency and robustness" (§3.2), plus a regenerated current copy
//! when hyperlinks have been rewritten. [`MemStore`] backs the simulator
//! and tests; [`DiskStore`] backs the real TCP server, mirroring the
//! prototype's behaviour of writing regenerated documents back to their
//! HTML source files.

use crate::stream::DocReader;
use std::collections::HashMap;
use std::io;
use std::path::{Path, PathBuf};

/// Key-value store of document bytes, keyed by canonical document name
/// (`/path/doc.html`).
pub trait DocStore: Send {
    /// Fetch a document's bytes.
    fn get(&self, name: &str) -> Option<Vec<u8>>;
    /// Store (or replace) a document's bytes. An error means the
    /// document was *not* durably stored (invalid name, disk write or
    /// rename failure); callers count these rather than losing
    /// documents quietly.
    fn put(&mut self, name: &str, bytes: Vec<u8>) -> io::Result<()>;
    /// Remove a document; returns whether it existed.
    fn remove(&mut self, name: &str) -> bool;
    /// Whether a document exists. Backends should answer from metadata
    /// — the default is a full content fetch.
    fn contains(&self, name: &str) -> bool {
        self.get(name).is_some()
    }
    /// A document's size in bytes without fetching its content, or
    /// `None` if absent. The streaming path uses this to decide
    /// buffered-vs-streamed before touching any bytes.
    fn size(&self, name: &str) -> Option<u64> {
        self.get(name).map(|b| b.len() as u64)
    }
    /// Open a chunked reader over a document (`None` if absent). The
    /// default buffers; [`DiskStore`] overrides with an incremental
    /// `File` handle so large documents are never loaded whole.
    fn open_stream(&self, name: &str) -> Option<DocReader> {
        self.get(name).map(DocReader::from_bytes)
    }
    /// Number of stored documents.
    fn len(&self) -> usize;
    /// Total bytes across all stored documents — the corpus size, used
    /// to print store footprints and pick default cache budgets.
    fn total_bytes(&self) -> u64;
    /// Whether the store is empty.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// The error used for document names a store refuses to map to a
/// location (traversal, empty, NUL).
fn bad_name(name: &str) -> io::Error {
    io::Error::new(
        io::ErrorKind::InvalidInput,
        format!("unstorable document name: {name:?}"),
    )
}

/// In-memory store; the paper assumes the graph and (here) documents fit
/// in memory for the datasets at hand.
#[derive(Debug, Default)]
pub struct MemStore {
    map: HashMap<String, Vec<u8>>,
}

impl MemStore {
    /// An empty store.
    pub fn new() -> Self {
        Self::default()
    }
}

impl DocStore for MemStore {
    fn get(&self, name: &str) -> Option<Vec<u8>> {
        self.map.get(name).cloned()
    }
    fn put(&mut self, name: &str, bytes: Vec<u8>) -> io::Result<()> {
        self.map.insert(name.to_string(), bytes);
        Ok(())
    }
    fn remove(&mut self, name: &str) -> bool {
        self.map.remove(name).is_some()
    }
    fn contains(&self, name: &str) -> bool {
        self.map.contains_key(name)
    }
    fn size(&self, name: &str) -> Option<u64> {
        self.map.get(name).map(|b| b.len() as u64)
    }
    fn len(&self) -> usize {
        self.map.len()
    }
    fn total_bytes(&self) -> u64 {
        self.map.values().map(|b| b.len() as u64).sum()
    }
}

/// Filesystem-backed store rooted at a directory. Document names map to
/// paths under the root; traversal outside the root is rejected.
#[derive(Debug)]
pub struct DiskStore {
    root: PathBuf,
}

impl DiskStore {
    /// Open (creating if needed) a store rooted at `root`.
    pub fn open(root: impl AsRef<Path>) -> io::Result<Self> {
        let root = root.as_ref().to_path_buf();
        std::fs::create_dir_all(&root)?;
        Ok(DiskStore { root })
    }

    /// Root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// Map a document name to a path under the root, rejecting names that
    /// escape it (`..` segments) or smuggle NULs.
    fn path_for(&self, name: &str) -> Option<PathBuf> {
        if name.contains('\0') {
            return None;
        }
        let rel = name.trim_start_matches('/');
        if rel.is_empty() {
            return None;
        }
        let mut p = self.root.clone();
        for seg in rel.split('/') {
            if seg.is_empty() || seg == "." || seg == ".." {
                return None;
            }
            p.push(seg);
        }
        Some(p)
    }
}

impl DocStore for DiskStore {
    fn get(&self, name: &str) -> Option<Vec<u8>> {
        std::fs::read(self.path_for(name)?).ok()
    }

    fn put(&mut self, name: &str, bytes: Vec<u8>) -> io::Result<()> {
        let p = self.path_for(name).ok_or_else(|| bad_name(name))?;
        if let Some(parent) = p.parent() {
            std::fs::create_dir_all(parent)?;
        }
        // Write-rename for atomicity: a concurrent reader sees old or new,
        // never a torn file.
        let tmp = p.with_extension("tmp-dcws");
        std::fs::write(&tmp, &bytes)?;
        if let Err(e) = std::fs::rename(&tmp, &p) {
            let _ = std::fs::remove_file(&tmp);
            return Err(e);
        }
        Ok(())
    }

    /// Metadata stat — never reads the file.
    fn contains(&self, name: &str) -> bool {
        self.size(name).is_some()
    }

    /// Metadata stat — never reads the file.
    fn size(&self, name: &str) -> Option<u64> {
        let meta = std::fs::metadata(self.path_for(name)?).ok()?;
        meta.is_file().then_some(meta.len())
    }

    /// An incremental `File` handle: chunked serves read at an offset
    /// and never buffer the document.
    fn open_stream(&self, name: &str) -> Option<DocReader> {
        let p = self.path_for(name)?;
        let len = {
            let meta = std::fs::metadata(&p).ok()?;
            if !meta.is_file() {
                return None;
            }
            meta.len()
        };
        let f = std::fs::File::open(&p).ok()?;
        Some(DocReader::from_file(f, len))
    }

    fn remove(&mut self, name: &str) -> bool {
        self.path_for(name)
            .map(|p| std::fs::remove_file(p).is_ok())
            .unwrap_or(false)
    }

    fn len(&self) -> usize {
        fn count(dir: &Path) -> usize {
            std::fs::read_dir(dir)
                .map(|rd| {
                    rd.flatten()
                        .map(|e| {
                            let p = e.path();
                            if p.is_dir() {
                                count(&p)
                            } else {
                                1
                            }
                        })
                        .sum()
                })
                .unwrap_or(0)
        }
        count(&self.root)
    }

    fn total_bytes(&self) -> u64 {
        fn sum(dir: &Path) -> u64 {
            std::fs::read_dir(dir)
                .map(|rd| {
                    rd.flatten()
                        .map(|e| {
                            let p = e.path();
                            if p.is_dir() {
                                sum(&p)
                            } else {
                                e.metadata().map(|m| m.len()).unwrap_or(0)
                            }
                        })
                        .sum()
                })
                .unwrap_or(0)
        }
        sum(&self.root)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mem_store_basics() {
        let mut s = MemStore::new();
        assert!(s.is_empty());
        s.put("/a.html", b"hello".to_vec()).unwrap();
        assert_eq!(s.get("/a.html").unwrap(), b"hello");
        assert!(s.contains("/a.html"));
        assert_eq!(s.len(), 1);
        assert_eq!(s.total_bytes(), 5);
        s.put("/a.html", b"world".to_vec()).unwrap();
        assert_eq!(s.get("/a.html").unwrap(), b"world");
        assert!(s.remove("/a.html"));
        assert!(!s.remove("/a.html"));
        assert!(s.get("/a.html").is_none());
    }

    fn tmp_dir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("dcws-store-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    #[test]
    fn disk_store_round_trip() {
        let dir = tmp_dir("rt");
        let mut s = DiskStore::open(&dir).unwrap();
        s.put("/sub/dir/x.html", b"content".to_vec()).unwrap();
        assert_eq!(s.get("/sub/dir/x.html").unwrap(), b"content");
        assert_eq!(s.len(), 1);
        assert_eq!(s.total_bytes(), 7);
        assert!(s.remove("/sub/dir/x.html"));
        assert!(s.get("/sub/dir/x.html").is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn disk_store_rejects_traversal() {
        let dir = tmp_dir("trav");
        let mut s = DiskStore::open(&dir).unwrap();
        assert!(s.put("/../escape.html", b"evil".to_vec()).is_err());
        assert!(s.get("/../escape.html").is_none());
        assert!(!dir.parent().unwrap().join("escape.html").exists());
        assert!(s.put("/a/../../b.html", b"evil".to_vec()).is_err());
        assert_eq!(s.len(), 0);
        assert!(!s.remove("/.."));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn disk_store_rejects_empty_and_nul() {
        let dir = tmp_dir("nul");
        let mut s = DiskStore::open(&dir).unwrap();
        assert!(s.put("/", b"x".to_vec()).is_err());
        assert!(s.put("", b"x".to_vec()).is_err());
        assert!(s.put("/a\0b", b"x".to_vec()).is_err());
        assert_eq!(s.len(), 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn disk_store_overwrite_is_atomic_rename() {
        let dir = tmp_dir("atomic");
        let mut s = DiskStore::open(&dir).unwrap();
        s.put("/x.html", b"one".to_vec()).unwrap();
        s.put("/x.html", b"two".to_vec()).unwrap();
        assert_eq!(s.size("/x.html"), Some(3));
        assert_eq!(s.get("/x.html").unwrap(), b"two");
        // No stray temp files left behind.
        let leftovers: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .flatten()
            .filter(|e| e.path().extension().is_some_and(|x| x == "tmp-dcws"))
            .collect();
        assert!(leftovers.is_empty());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn disk_store_stat_answers_contains_and_size() {
        let dir = tmp_dir("stat");
        let mut s = DiskStore::open(&dir).unwrap();
        s.put("/big.bin", vec![0u8; 4096]).unwrap();
        assert!(s.contains("/big.bin"));
        assert_eq!(s.size("/big.bin"), Some(4096));
        assert!(!s.contains("/missing.bin"));
        assert_eq!(s.size("/missing.bin"), None);
        // A directory on the path is not a document.
        s.put("/sub/doc.html", b"x".to_vec()).unwrap();
        assert!(!s.contains("/sub"));
        assert_eq!(s.size("/sub"), None);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn disk_store_streams_incrementally_with_seek() {
        use std::io::Read;
        let dir = tmp_dir("stream");
        let mut s = DiskStore::open(&dir).unwrap();
        let data: Vec<u8> = (0..100_000u32).map(|i| (i % 251) as u8).collect();
        s.put("/seq/img.bin", data.clone()).unwrap();
        let mut r = s.open_stream("/seq/img.bin").unwrap();
        assert_eq!(r.len(), data.len() as u64);
        r.seek_to(99_000).unwrap();
        let mut tail = Vec::new();
        r.read_to_end(&mut tail).unwrap();
        assert_eq!(tail, &data[99_000..]);
        assert!(s.open_stream("/seq/none.bin").is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn mem_store_stream_default_matches_get() {
        use std::io::Read;
        let mut s = MemStore::new();
        s.put("/a.bin", vec![9u8; 5000]).unwrap();
        assert_eq!(s.size("/a.bin"), Some(5000));
        let mut r = s.open_stream("/a.bin").unwrap();
        let mut out = Vec::new();
        r.read_to_end(&mut out).unwrap();
        assert_eq!(out, s.get("/a.bin").unwrap());
    }
}
