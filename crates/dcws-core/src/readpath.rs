//! The read-mostly serve path — lock-shedding for the common case.
//!
//! The paper's §5.1 architecture shares the LDG/GLT between worker
//! threads and the statistics module through one lock; faithfully
//! reproduced, that lock serializes *every* request. [`ReadPath`] is the
//! escape hatch: a snapshot of exactly the state the common case needs —
//! GET of a local, non-dirty, non-migrated document, or a warm co-op
//! copy — readable by any number of worker threads concurrently, while
//! everything rare (migration, regeneration, pulls, pushes, validations,
//! tick) still goes through the exclusive [`ServerEngine`](crate::ServerEngine) lock.
//!
//! Three pieces:
//!
//! * a **sharded serve table** (`RwLock` per shard) mapping home-document
//!   paths to prebuilt routes: a [`Body`]-backed document entry or a
//!   ready-made `301` response. The table is *primed* by the engine's
//!   exclusive serve path on first serve and *invalidated* by every
//!   mutation (publish, dirty settlement, migrate/revoke — including the
//!   link-sources those dirty). Readers therefore see either the current
//!   route or a vacancy, never a stale body;
//! * the shared co-op [`DocCache`] (internally sharded already), so warm
//!   co-op hits need no engine lock either;
//! * **mailboxes** for the write-side effects a serve produces: per-doc
//!   hit counts (LDG accounting), piggybacked [`LoadReport`]s (GLT
//!   merges), and connection/byte totals (the CPS/BPS window). The engine
//!   drains all three at [`tick`](crate::ServerEngine::tick), so read-path
//!   requests update migration statistics and the GLT within one tick
//!   without ever taking the write lock themselves.
//!
//! Bodies are [`Body`] (`Arc<[u8]>`): a read-path hit clones a refcount,
//! never the document bytes.

use crate::engine::coop_cache_key;
use crate::naming::decode_migrate_path;
use dcws_cache::DocCache;
use dcws_graph::ServerId;
use dcws_http::{
    http_date, is_reserved_path, parse_http_date, Body, LoadReport, Method, Request, Response,
    PIGGYBACK_HEADER,
};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, RwLock};

/// Serve-table shard count (power of two). Mirrors the co-op cache's
/// default sharding: enough to keep a worker pool off shared lines.
const N_SHARDS: usize = 8;

/// Fixed per-route bookkeeping charge against the table budget.
const ROUTE_OVERHEAD: u64 = 64;

/// Deferred-report mailbox bound. Gossip is lossy by design; overflow
/// drops the report (counted) rather than growing without bound.
const REPORT_MAILBOX_CAP: usize = 256;

/// One primed route in the serve table.
enum ServeRoute {
    /// A home-resident document ready to serve: shared body, media type,
    /// modification time, and the `Last-Modified` string prerendered so
    /// the hot path does no date formatting.
    Doc {
        /// Shared document bytes.
        body: Body,
        /// MIME type.
        content_type: String,
        /// Modification time (engine ms) for `If-Modified-Since`.
        modified_ms: u64,
        /// Prerendered RFC 1123 form of `modified_ms`.
        last_modified: String,
    },
    /// A migrated document: the prebuilt `301` to its co-op. Cloning the
    /// response clones the notice body by refcount.
    Moved(Response),
}

impl ServeRoute {
    /// Budget cost of this route under `path`.
    fn cost(&self, path: &str) -> u64 {
        let inner = match self {
            ServeRoute::Doc {
                body,
                content_type,
                last_modified,
                ..
            } => body.len() + content_type.len() + last_modified.len(),
            ServeRoute::Moved(resp) => resp.body.len() + 128,
        };
        path.len() as u64 + inner as u64 + ROUTE_OVERHEAD
    }
}

/// One shard of the hit mailbox: `path -> (hits, bytes)`.
type HitShard = Mutex<HashMap<String, (u64, u64)>>;

/// One serve-table shard: routes plus their resident cost.
#[derive(Default)]
struct TableShard {
    map: HashMap<String, ServeRoute>,
    bytes: u64,
}

/// Monotonic counters for work done on the read path; folded into
/// [`EngineStats`](crate::EngineStats) by `ServerEngine::stats()` so the
/// totals stay whole no matter which path served a request.
#[derive(Default)]
struct ReadCounters {
    requests: AtomicU64,
    served_home: AtomicU64,
    served_coop: AtomicU64,
    redirects: AtomicU64,
    conditional_not_modified: AtomicU64,
    bytes_sent: AtomicU64,
    stale_serves: AtomicU64,
    fallbacks: AtomicU64,
    shard_clears: AtomicU64,
    reports_deferred: AtomicU64,
    reports_dropped: AtomicU64,
}

/// Snapshot of the read path's counters and table occupancy.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReadPathStats {
    /// Requests fully served on the read path (no engine lock).
    pub requests: u64,
    /// 200s for home-resident documents.
    pub served_home: u64,
    /// 200s for co-op-held copies.
    pub served_coop: u64,
    /// 301s from prebuilt moved routes.
    pub redirects: u64,
    /// Conditional GETs answered 304.
    pub conditional_not_modified: u64,
    /// Body bytes sent in read-path 200s.
    pub bytes_sent: u64,
    /// 200s served from a stale-marked co-op copy (failed T_val).
    pub stale_serves: u64,
    /// Requests the read path declined (engine lock taken instead).
    pub fallbacks: u64,
    /// Serve-table shards cleared wholesale on budget overflow.
    pub shard_clears: u64,
    /// Piggybacked load reports deferred to the tick mailbox.
    pub reports_deferred: u64,
    /// Load reports dropped because the mailbox was full.
    pub reports_dropped: u64,
    /// Routes currently resident in the serve table.
    pub table_entries: u64,
    /// Budget cost of resident routes.
    pub table_bytes: u64,
}

/// The concurrent read-mostly serve path (see module docs).
///
/// One `ReadPath` is created by each [`ServerEngine`](crate::ServerEngine)
/// and shared (via `Arc`) with the transport's worker threads; all methods
/// take `&self`.
pub struct ReadPath {
    id: ServerId,
    table: Box<[RwLock<TableShard>]>,
    table_budget: AtomicU64,
    coop_cache: std::sync::Arc<DocCache>,
    /// Per-shard home-document hit tallies: `path -> (hits, bytes)`.
    hits: Box<[HitShard]>,
    /// Deferred GLT merges from piggybacked request headers.
    reports: Mutex<Vec<LoadReport>>,
    /// Load reports this server currently advertises (self first),
    /// refreshed by the engine every tick; attached to read-path
    /// responses and transport-built pull requests.
    published: RwLock<Vec<LoadReport>>,
    /// Connection/byte totals awaiting the engine's rate window.
    traffic_conns: AtomicU64,
    traffic_bytes: AtomicU64,
    counters: ReadCounters,
}

/// FNV-1a, as used for cache sharding.
fn fnv1a(key: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in key.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

impl ReadPath {
    /// Build a read path for server `id` sharing `coop_cache`, with a
    /// serve-table byte budget of `table_budget`.
    pub(crate) fn new(
        id: ServerId,
        coop_cache: std::sync::Arc<DocCache>,
        table_budget: u64,
    ) -> ReadPath {
        ReadPath {
            id,
            table: (0..N_SHARDS)
                .map(|_| RwLock::new(TableShard::default()))
                .collect::<Vec<_>>()
                .into_boxed_slice(),
            table_budget: AtomicU64::new(table_budget),
            coop_cache,
            hits: (0..N_SHARDS)
                .map(|_| Mutex::new(HashMap::new()))
                .collect::<Vec<_>>()
                .into_boxed_slice(),
            reports: Mutex::new(Vec::new()),
            published: RwLock::new(Vec::new()),
            traffic_conns: AtomicU64::new(0),
            traffic_bytes: AtomicU64::new(0),
            counters: ReadCounters::default(),
        }
    }

    /// This server's identity.
    pub fn id(&self) -> &ServerId {
        &self.id
    }

    fn shard_idx(&self, path: &str) -> usize {
        (fnv1a(path) & (N_SHARDS as u64 - 1)) as usize
    }

    /// Try to serve `req` without the engine lock. `None` means the
    /// request needs the exclusive path (anything inter-server, any miss,
    /// any non-GET/HEAD) — hand it to `ServerEngine::handle_request`.
    pub fn try_serve(&self, req: &Request, _now_ms: u64) -> Option<Response> {
        if req.method != Method::Get && req.method != Method::Head {
            return self.fallback();
        }
        // Inter-server extension headers force the exclusive path —
        // except pure piggyback, whose GLT merge we defer to tick.
        let mut has_load = false;
        for (name, _) in req.headers.iter() {
            if name.len() >= 7 && name[..7].eq_ignore_ascii_case("x-dcws-") {
                if name.eq_ignore_ascii_case(PIGGYBACK_HEADER) {
                    has_load = true;
                } else {
                    return self.fallback();
                }
            }
        }
        let Ok(url) = req.url() else {
            return self.fallback();
        };
        let path = url.path();
        if is_reserved_path(path) {
            // The transport answers /dcws/* itself; never a fallback.
            return None;
        }
        let resp = match decode_migrate_path(path) {
            Err(_) => return self.fallback(),
            Ok(Some(t)) if t.home != self.id => self.serve_coop_hit(&t.home, &t.path, req),
            Ok(Some(t)) => self.serve_table(&t.path, req),
            Ok(None) => self.serve_table(path, req),
        };
        let Some(resp) = resp else {
            return self.fallback();
        };
        // Client GETs may carry a byte range; 304s pass through untouched
        // (If-Modified-Since wins). Bodies here are buffered snapshots —
        // large objects never enter the table (cost > shard budget) and
        // take the engine's streamed path instead.
        let mut resp = dcws_http::apply_range(req, resp);
        if has_load {
            self.defer_reports(req);
            for r in self.published_reports() {
                r.attach(&mut resp.headers);
            }
        }
        self.counters.requests.fetch_add(1, Ordering::Relaxed);
        Some(resp)
    }

    /// Count a declined request and return `None`.
    fn fallback(&self) -> Option<Response> {
        self.counters.fallbacks.fetch_add(1, Ordering::Relaxed);
        None
    }

    /// A warm co-op copy, straight from the shared cache.
    fn serve_coop_hit(&self, home: &ServerId, path: &str, req: &Request) -> Option<Response> {
        let key = coop_cache_key(home, path);
        // Peek first so a miss/negative doesn't skew the cache counters:
        // the engine fallback will run its own counted lookup.
        let peeked = self.coop_cache.peek(&key)?;
        if peeked.negative {
            return None;
        }
        // The counted, LRU-promoting lookup.
        let doc = self.coop_cache.get(&key)?;
        if doc.negative {
            return None;
        }
        let last_modified = http_date(doc.modified_ms);
        if let Some(since) = req
            .headers
            .get("If-Modified-Since")
            .and_then(parse_http_date)
        {
            // HTTP dates have second granularity; compare at that grain.
            if doc.modified_ms / 1000 * 1000 <= since {
                self.counters
                    .conditional_not_modified
                    .fetch_add(1, Ordering::Relaxed);
                self.record_traffic(0);
                return Some(Response::not_modified().with_header("Last-Modified", &last_modified));
            }
        }
        self.counters.served_coop.fetch_add(1, Ordering::Relaxed);
        if doc.stale {
            // Freshness unverified (failed T_val): still served, counted.
            self.counters.stale_serves.fetch_add(1, Ordering::Relaxed);
        }
        self.counters
            .bytes_sent
            .fetch_add(doc.bytes.len() as u64, Ordering::Relaxed);
        self.record_traffic(doc.bytes.len() as u64);
        Some(
            Response::ok(doc.bytes, &doc.content_type).with_header("Last-Modified", &last_modified),
        )
    }

    /// A primed home-document route from the serve table.
    fn serve_table(&self, path: &str, req: &Request) -> Option<Response> {
        let shard = self.table[self.shard_idx(path)]
            .read()
            .unwrap_or_else(|e| e.into_inner());
        match shard.map.get(path)? {
            ServeRoute::Moved(resp) => {
                self.counters.redirects.fetch_add(1, Ordering::Relaxed);
                self.record_traffic(resp.body.len() as u64);
                Some(resp.clone())
            }
            ServeRoute::Doc {
                body,
                content_type,
                modified_ms,
                last_modified,
            } => {
                if let Some(since) = req
                    .headers
                    .get("If-Modified-Since")
                    .and_then(parse_http_date)
                {
                    if modified_ms / 1000 * 1000 <= since {
                        self.counters
                            .conditional_not_modified
                            .fetch_add(1, Ordering::Relaxed);
                        self.note_hit(path, 0);
                        self.record_traffic(0);
                        return Some(
                            Response::not_modified().with_header("Last-Modified", last_modified),
                        );
                    }
                }
                self.counters.served_home.fetch_add(1, Ordering::Relaxed);
                self.counters
                    .bytes_sent
                    .fetch_add(body.len() as u64, Ordering::Relaxed);
                self.note_hit(path, body.len() as u64);
                self.record_traffic(body.len() as u64);
                Some(
                    Response::ok(body.clone(), content_type)
                        .with_header("Last-Modified", last_modified),
                )
            }
        }
    }

    /// Build the lazy pull request for `path` without the engine lock:
    /// identity headers plus the published load-report snapshot (what
    /// `ServerEngine::attach_reports` would have said as of last tick).
    pub fn make_pull_request(&self, path: &str) -> Request {
        let mut req = Request::get(path)
            .with_header("X-DCWS-Pull", "1")
            .with_header("X-DCWS-Coop", self.id.as_str());
        for r in self.published_reports() {
            r.attach(&mut req.headers);
        }
        req
    }

    // ---- write-side hooks (called by the engine, under its lock) ----

    /// Prime a document route.
    pub(crate) fn install_doc(&self, path: &str, body: Body, content_type: &str, modified_ms: u64) {
        self.install(
            path,
            ServeRoute::Doc {
                body,
                content_type: content_type.to_string(),
                modified_ms,
                last_modified: http_date(modified_ms),
            },
        );
    }

    /// Prime a moved (301) route.
    pub(crate) fn install_moved(&self, path: &str, resp: Response) {
        self.install(path, ServeRoute::Moved(resp));
    }

    fn install(&self, path: &str, route: ServeRoute) {
        let per_shard = self.table_budget.load(Ordering::Relaxed) / self.table.len() as u64;
        let cost = route.cost(path);
        if cost > per_shard {
            return;
        }
        let mut shard = self.table[self.shard_idx(path)]
            .write()
            .unwrap_or_else(|e| e.into_inner());
        if let Some(old) = shard.map.remove(path) {
            shard.bytes = shard.bytes.saturating_sub(old.cost(path));
        }
        if shard.bytes + cost > per_shard {
            // Snapshot cache, not a store: clearing the shard is always
            // safe (the exclusive path re-primes on demand) and keeps the
            // structure allocation-bounded without LRU bookkeeping.
            shard.map.clear();
            shard.bytes = 0;
            self.counters.shard_clears.fetch_add(1, Ordering::Relaxed);
        }
        shard.map.insert(path.to_string(), route);
        shard.bytes += cost;
    }

    /// Drop the route for `path`, if primed. Every mutation that changes
    /// what `path` (or a document linking to it) serves must call this.
    pub(crate) fn invalidate(&self, path: &str) {
        let mut shard = self.table[self.shard_idx(path)]
            .write()
            .unwrap_or_else(|e| e.into_inner());
        if let Some(old) = shard.map.remove(path) {
            shard.bytes = shard.bytes.saturating_sub(old.cost(path));
        }
    }

    /// Re-budget the serve table; over-budget shards are cleared.
    pub(crate) fn set_table_budget(&self, budget: u64) {
        self.table_budget.store(budget, Ordering::Relaxed);
        let per_shard = budget / self.table.len() as u64;
        for shard in self.table.iter() {
            let mut s = shard.write().unwrap_or_else(|e| e.into_inner());
            if s.bytes > per_shard {
                s.map.clear();
                s.bytes = 0;
                self.counters.shard_clears.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Replace the published load-report snapshot (engine, every tick).
    pub(crate) fn publish_reports(&self, reports: Vec<LoadReport>) {
        *self.published.write().unwrap_or_else(|e| e.into_inner()) = reports;
    }

    /// The currently published load reports (self first).
    pub fn published_reports(&self) -> Vec<LoadReport> {
        self.published
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .clone()
    }

    // ---- mailboxes ----

    fn note_hit(&self, path: &str, bytes: u64) {
        let mut hits = self.hits[self.shard_idx(path)]
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        let e = hits.entry(path.to_string()).or_insert((0, 0));
        e.0 += 1;
        e.1 += bytes;
    }

    fn record_traffic(&self, bytes: u64) {
        self.traffic_conns.fetch_add(1, Ordering::Relaxed);
        self.traffic_bytes.fetch_add(bytes, Ordering::Relaxed);
    }

    fn defer_reports(&self, req: &Request) {
        for r in LoadReport::extract_all(&req.headers) {
            if r.server == self.id.as_str() {
                continue;
            }
            let mut mb = self.reports.lock().unwrap_or_else(|e| e.into_inner());
            if mb.len() >= REPORT_MAILBOX_CAP {
                self.counters
                    .reports_dropped
                    .fetch_add(1, Ordering::Relaxed);
            } else {
                mb.push(r);
                self.counters
                    .reports_deferred
                    .fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Take all deferred load reports (engine drain, every tick).
    pub(crate) fn take_reports(&self) -> Vec<LoadReport> {
        std::mem::take(&mut *self.reports.lock().unwrap_or_else(|e| e.into_inner()))
    }

    /// Take all batched hit tallies: `(path, hits, bytes)`.
    pub(crate) fn take_hits(&self) -> Vec<(String, u64, u64)> {
        let mut out = Vec::new();
        for shard in self.hits.iter() {
            let mut map = shard.lock().unwrap_or_else(|e| e.into_inner());
            out.extend(map.drain().map(|(k, (n, b))| (k, n, b)));
        }
        out
    }

    /// Take the accumulated `(connections, bytes)` totals.
    pub(crate) fn take_traffic(&self) -> (u64, u64) {
        (
            self.traffic_conns.swap(0, Ordering::Relaxed),
            self.traffic_bytes.swap(0, Ordering::Relaxed),
        )
    }

    /// Counter + occupancy snapshot.
    pub fn snapshot(&self) -> ReadPathStats {
        let c = &self.counters;
        let (mut entries, mut bytes) = (0u64, 0u64);
        for shard in self.table.iter() {
            let s = shard.read().unwrap_or_else(|e| e.into_inner());
            entries += s.map.len() as u64;
            bytes += s.bytes;
        }
        ReadPathStats {
            requests: c.requests.load(Ordering::Relaxed),
            served_home: c.served_home.load(Ordering::Relaxed),
            served_coop: c.served_coop.load(Ordering::Relaxed),
            redirects: c.redirects.load(Ordering::Relaxed),
            conditional_not_modified: c.conditional_not_modified.load(Ordering::Relaxed),
            bytes_sent: c.bytes_sent.load(Ordering::Relaxed),
            stale_serves: c.stale_serves.load(Ordering::Relaxed),
            fallbacks: c.fallbacks.load(Ordering::Relaxed),
            shard_clears: c.shard_clears.load(Ordering::Relaxed),
            reports_deferred: c.reports_deferred.load(Ordering::Relaxed),
            reports_dropped: c.reports_dropped.load(Ordering::Relaxed),
            table_entries: entries,
            table_bytes: bytes,
        }
    }
}
