//! Engine introspection — the data behind the `/dcws/status` endpoint.
//!
//! [`ServerEngine::status_json`] renders everything an operator needs to
//! see what the control plane is doing: the full counter set, derived
//! rates, this server's view of the GLT (including dead-listed peers),
//! standing migrations with their replica sets, the hottest documents,
//! and the tail of the structured event log. The transport host
//! (`dcws-net`) wraps this object with its own section (latency
//! histograms, queue drops) to form the complete endpoint body.
//!
//! ```
//! use dcws_core::{MemStore, ServerConfig, ServerEngine};
//! use dcws_graph::{DocKind, ServerId};
//!
//! let mut engine = ServerEngine::new(
//!     ServerId::new("a:8080"),
//!     ServerConfig::paper_defaults(),
//!     Box::new(MemStore::new()),
//! );
//! engine.publish("/index.html", b"<p>hi</p>".to_vec(), DocKind::Html, true);
//! let status = engine.status_json();
//! assert_eq!(status.get("server").and_then(|v| v.as_str()), Some("a:8080"));
//! assert!(status.get("stats").is_some());
//! ```

use crate::engine::ServerEngine;
use crate::json::Json;
use dcws_cache::CacheStats;
use dcws_graph::{Location, ServerId};

/// Render one cache's stats snapshot as a JSON object.
fn cache_stats_json(s: &CacheStats) -> Json {
    Json::obj(vec![
        ("hits", Json::from(s.hits)),
        ("misses", Json::from(s.misses)),
        ("hit_ratio", Json::from(s.hit_ratio())),
        ("negative_hits", Json::from(s.negative_hits)),
        ("insertions", Json::from(s.insertions)),
        ("evictions", Json::from(s.evictions)),
        ("oversize_rejects", Json::from(s.oversize_rejects)),
        ("coalesced_waits", Json::from(s.coalesced_waits)),
        ("bytes_resident", Json::from(s.bytes_resident)),
        ("entries", Json::from(s.entries)),
        ("budget_bytes", Json::from(s.budget_bytes)),
    ])
}

/// How many recent event records `status_json` embeds.
pub const STATUS_RECENT_EVENTS: usize = 64;

/// How many hottest documents `status_json` lists.
pub const STATUS_HOT_DOCS: usize = 10;

/// One row of the hottest-documents summary.
#[derive(Debug, Clone, PartialEq)]
pub struct HotDoc {
    /// Document name.
    pub name: String,
    /// Hits in the last completed accounting window (what Algorithm 1
    /// compares against its threshold).
    pub hits_window: u64,
    /// Lifetime hits.
    pub hits_total: u64,
    /// Content size in bytes.
    pub size: u64,
    /// `None` when home-resident, the co-op's id when migrated.
    pub coop: Option<ServerId>,
}

/// One row of the per-peer summary.
#[derive(Debug, Clone, PartialEq)]
pub struct PeerSummary {
    /// Peer identity.
    pub id: ServerId,
    /// Last reported connections/second.
    pub cps: f64,
    /// Last reported bytes/second.
    pub bps: f64,
    /// Timestamp of that report (engine ms).
    pub ts_ms: u64,
    /// Currently on the dead list (§4.5).
    pub dead: bool,
    /// Documents of ours this peer hosts as a co-op.
    pub docs_hosted: usize,
}

impl ServerEngine {
    /// The hottest `n` documents by last-window hits (ties broken by
    /// lifetime hits, then name for determinism).
    pub fn hot_docs(&self, n: usize) -> Vec<HotDoc> {
        let mut docs: Vec<HotDoc> = self
            .ldg
            .iter()
            .map(|e| HotDoc {
                name: e.name.clone(),
                hits_window: e.hits,
                hits_total: e.hits_total,
                size: e.size,
                coop: match &e.location {
                    Location::Home => None,
                    Location::Coop(c) => Some(c.clone()),
                },
            })
            .collect();
        docs.sort_by(|a, b| {
            b.hits_window
                .cmp(&a.hits_window)
                .then(b.hits_total.cmp(&a.hits_total))
                .then(a.name.cmp(&b.name))
        });
        docs.truncate(n);
        docs
    }

    /// Per-peer view: GLT load report, dead-list state, and how many of
    /// our documents each peer hosts as a co-op.
    pub fn peer_summaries(&self) -> Vec<PeerSummary> {
        let mut out: Vec<PeerSummary> = self
            .glt
            .snapshot()
            .into_iter()
            .filter(|(sid, _)| *sid != self.id)
            .map(|(sid, info)| PeerSummary {
                dead: self.dead_peers.contains(&sid),
                docs_hosted: self.ldg.migrated_to(&sid).len(),
                cps: info.cps,
                bps: info.bps,
                ts_ms: info.ts_ms,
                id: sid,
            })
            .collect();
        out.sort_by(|a, b| a.id.as_str().cmp(b.id.as_str()));
        out
    }

    /// The engine section of the `/dcws/status` document. Pure
    /// inspection: takes `&self` and changes nothing.
    pub fn status_json(&self) -> Json {
        let stats = self.stats();
        let stats_json = Json::Obj(
            stats
                .fields()
                .iter()
                .map(|(name, value)| (name.to_string(), Json::U64(*value)))
                .collect(),
        );
        let rates = Json::obj(vec![
            ("success_ratio", Json::from(stats.success_ratio())),
            ("coop_serve_share", Json::from(stats.coop_serve_share())),
            ("redirect_ratio", Json::from(stats.redirect_ratio())),
            (
                "validation_hit_ratio",
                Json::from(stats.validation_hit_ratio()),
            ),
            ("mean_body_bytes", Json::from(stats.mean_body_bytes())),
        ]);

        let self_info = self.glt.self_info();
        let load = Json::obj(vec![
            ("cps", Json::from(self_info.cps)),
            ("bps", Json::from(self_info.bps)),
            ("ts_ms", Json::from(self_info.ts_ms)),
        ]);

        let glt = Json::Arr(
            self.peer_summaries()
                .into_iter()
                .map(|p| {
                    Json::obj(vec![
                        ("server", Json::from(p.id.as_str())),
                        ("cps", Json::from(p.cps)),
                        ("bps", Json::from(p.bps)),
                        ("ts_ms", Json::from(p.ts_ms)),
                        ("dead", Json::from(p.dead)),
                        ("docs_hosted", Json::from(p.docs_hosted)),
                    ])
                })
                .collect(),
        );

        let migrations = Json::Arr(
            self.ldg
                .all_migrated()
                .into_iter()
                .map(|(doc, coop)| {
                    let migrated_at = self.ldg.get(&doc).and_then(|e| e.migrated_at);
                    let replicas = self.replicas.get(&doc).map(|reps| {
                        Json::Arr(reps.iter().map(|r| Json::from(r.as_str())).collect())
                    });
                    Json::obj(vec![
                        ("doc", Json::from(doc.as_str())),
                        ("coop", Json::from(coop.as_str())),
                        ("migrated_at_ms", migrated_at.map_or(Json::Null, Json::U64)),
                        ("replicas", replicas.unwrap_or(Json::Null)),
                    ])
                })
                .collect(),
        );

        let hot = Json::Arr(
            self.hot_docs(STATUS_HOT_DOCS)
                .into_iter()
                .map(|d| {
                    Json::obj(vec![
                        ("doc", Json::from(d.name.as_str())),
                        ("hits_window", Json::from(d.hits_window)),
                        ("hits_total", Json::from(d.hits_total)),
                        ("size", Json::from(d.size)),
                        (
                            "coop",
                            d.coop
                                .as_ref()
                                .map_or(Json::Null, |c| Json::from(c.as_str())),
                        ),
                    ])
                })
                .collect(),
        );

        let coop_meta = self.coop_cache.entries_meta();
        let revoked_coop_docs = coop_meta.iter().filter(|(_, m)| m.negative).count();
        let coop_role = Json::obj(vec![
            ("docs_held", Json::from(coop_meta.len())),
            ("docs_revoked", Json::from(revoked_coop_docs)),
            ("moved_tombstones", Json::from(self.coop_moved.len())),
        ]);

        let regen_stats = self.regen_cache.stats();
        let coop_stats = self.coop_cache.stats();
        let merged = regen_stats.merged(&coop_stats);
        let pulled_sizes = Json::obj(vec![
            ("count", Json::from(self.pull_sizes.count())),
            ("sum_bytes", Json::from(self.pull_sizes.sum())),
            ("max_bytes", Json::from(self.pull_sizes.max())),
            ("mean_bytes", Json::from(self.pull_sizes.mean())),
            (
                "buckets",
                Json::Arr(
                    self.pull_sizes
                        .buckets()
                        .iter()
                        .map(|c| Json::from(*c))
                        .collect(),
                ),
            ),
        ]);
        let cache = Json::obj(vec![
            ("hit_ratio", Json::from(merged.hit_ratio())),
            ("bytes_resident", Json::from(merged.bytes_resident)),
            ("budget_bytes", Json::from(merged.budget_bytes)),
            ("evictions", Json::from(merged.evictions)),
            ("coalesced_waits", Json::from(merged.coalesced_waits)),
            ("oversize_rejects", Json::from(merged.oversize_rejects)),
            ("pending_serve", Json::from(self.pending_serve.len())),
            ("regen", cache_stats_json(&regen_stats)),
            ("coop", cache_stats_json(&coop_stats)),
            ("pulled_body_sizes", pulled_sizes),
        ]);

        let events = Json::obj(vec![
            ("total", Json::from(self.events.total_recorded())),
            ("dropped", Json::from(self.events.dropped())),
            ("capacity", Json::from(self.events.capacity())),
            (
                "recent",
                Json::Arr(
                    self.recent_events(STATUS_RECENT_EVENTS)
                        .iter()
                        .map(|r| r.to_json())
                        .collect(),
                ),
            ),
        ]);

        let r = self.read.snapshot();
        let read_path = Json::obj(vec![
            ("requests", Json::from(r.requests)),
            ("served_home", Json::from(r.served_home)),
            ("served_coop", Json::from(r.served_coop)),
            ("redirects", Json::from(r.redirects)),
            (
                "conditional_not_modified",
                Json::from(r.conditional_not_modified),
            ),
            ("bytes_sent", Json::from(r.bytes_sent)),
            ("stale_serves", Json::from(r.stale_serves)),
            ("fallbacks", Json::from(r.fallbacks)),
            ("shard_clears", Json::from(r.shard_clears)),
            ("reports_deferred", Json::from(r.reports_deferred)),
            ("reports_dropped", Json::from(r.reports_dropped)),
            ("table_entries", Json::from(r.table_entries)),
            ("table_bytes", Json::from(r.table_bytes)),
        ]);

        Json::obj(vec![
            ("server", Json::from(self.id.as_str())),
            ("now_ms", Json::from(self.now_ms)),
            ("docs_published", Json::from(self.ldg.len())),
            ("stats", stats_json),
            ("rates", rates),
            ("load", load),
            ("glt", glt),
            ("active_migrations", migrations),
            ("hot_docs", hot),
            ("coop_role", coop_role),
            ("cache", cache),
            ("read_path", read_path),
            ("events", events),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{MemStore, Outcome, ServerConfig};
    use dcws_graph::DocKind;
    use dcws_http::Request;

    fn engine(id: &str) -> ServerEngine {
        let cfg = ServerConfig {
            stat_interval_ms: 100,
            selection_threshold: 1,
            min_cps_to_migrate: 0.0,
            ..ServerConfig::paper_defaults()
        };
        ServerEngine::new(ServerId::new(id), cfg, Box::new(MemStore::new()))
    }

    #[test]
    fn status_contains_all_counters_and_sections() {
        let mut e = engine("home:8080");
        e.add_peer(ServerId::new("peer:8081"));
        e.publish(
            "/a.html",
            b"<a href=\"/b.html\">b</a>".to_vec(),
            DocKind::Html,
            true,
        );
        e.publish("/b.html", b"<p>b</p>".to_vec(), DocKind::Html, false);
        for t in 0..5 {
            let out = e.handle_request(&Request::get("/b.html"), t * 10);
            assert!(out.into_response().unwrap().status.is_success());
        }
        let status = e.status_json();
        // Every counter appears under "stats".
        let stats = status.get("stats").expect("stats section");
        for (name, value) in e.stats().fields() {
            assert_eq!(
                stats.get(name).and_then(|v| v.as_u64()),
                Some(value),
                "counter {name} missing or wrong in status"
            );
        }
        for section in [
            "rates",
            "load",
            "glt",
            "active_migrations",
            "hot_docs",
            "coop_role",
            "cache",
            "events",
        ] {
            assert!(status.get(section).is_some(), "missing section {section}");
        }
        // The acceptance keys of the cache section are present.
        let cache = status.get("cache").unwrap();
        for key in [
            "hit_ratio",
            "bytes_resident",
            "evictions",
            "coalesced_waits",
        ] {
            assert!(cache.get(key).is_some(), "missing cache.{key}");
        }
        for sub in ["regen", "coop"] {
            assert!(
                cache.get(sub).and_then(|s| s.get("hit_ratio")).is_some(),
                "missing cache.{sub}.hit_ratio"
            );
        }
        // Round-trips through the serializer and parser.
        let text = status.to_string();
        let back = Json::parse(&text).expect("status JSON parses");
        assert_eq!(
            back.get("server").and_then(|v| v.as_str()),
            Some("home:8080")
        );
    }

    #[test]
    fn hot_docs_sorted_and_truncated() {
        let mut e = engine("home:8080");
        for i in 0..15 {
            e.publish(
                &format!("/d{i}.html"),
                b"<p>x</p>".to_vec(),
                DocKind::Html,
                false,
            );
        }
        // d3 gets the most hits, then d7.
        for _ in 0..9 {
            e.handle_request(&Request::get("/d3.html"), 0);
        }
        for _ in 0..5 {
            e.handle_request(&Request::get("/d7.html"), 0);
        }
        // Hits promote into the window on rotation (via tick).
        e.tick(200);
        let hot = e.hot_docs(10);
        assert_eq!(hot.len(), 10);
        assert_eq!(hot[0].name, "/d3.html");
        assert_eq!(hot[0].hits_window, 9);
        assert_eq!(hot[1].name, "/d7.html");
        assert!(hot[0].coop.is_none());
    }

    #[test]
    fn peer_summary_tracks_migration_and_death() {
        let mut e = engine("home:8080");
        let peer = ServerId::new("peer:8081");
        e.add_peer(peer.clone());
        e.publish("/hot.html", b"<p>hot</p>".to_vec(), DocKind::Html, false);
        // Drive load so the migration gate opens, then tick to migrate.
        for t in 0..30 {
            e.handle_request(&Request::get("/hot.html"), t);
        }
        let out = e.tick(150);
        assert_eq!(out.migrated.len(), 1, "expected a migration");
        let peers = e.peer_summaries();
        assert_eq!(peers.len(), 1);
        assert_eq!(peers[0].id, peer);
        assert_eq!(peers[0].docs_hosted, 1);
        assert!(!peers[0].dead);
        // Events recorded the migration with its driving loads.
        let evs = e.recent_events(16);
        assert!(evs.iter().any(|r| r.event.kind() == "migration_started"));

        e.declare_peer_dead(&peer);
        let peers = e.peer_summaries();
        assert!(peers[0].dead);
        assert_eq!(peers[0].docs_hosted, 0, "docs recalled from dead peer");
        let evs = e.recent_events(16);
        assert!(evs.iter().any(|r| r.event.kind() == "peer_declared_dead"));
        assert!(evs.iter().any(|r| r.event.kind() == "migration_revoked"));
    }

    #[test]
    fn drain_events_empties_ring_but_status_counts_persist() {
        let mut e = engine("home:8080");
        e.publish(
            "/a.html",
            b"<a href=\"/b.html\">b</a>".to_vec(),
            DocKind::Html,
            true,
        );
        e.publish("/b.html", b"<p>b</p>".to_vec(), DocKind::Html, false);
        // First serve of /a.html regenerates (publish marks dirty via
        // link bookkeeping only when needed); force one by serving the
        // linking page after its target's location could have changed.
        match e.handle_request(&Request::get("/a.html"), 1) {
            Outcome::Response(r) => assert!(r.status.is_success()),
            Outcome::Stream { .. } => panic!("small HTML doc never streams"),
            Outcome::FetchNeeded { .. } => panic!("home doc needs no fetch"),
        }
        let drained = e.drain_events();
        let total = e.events().total_recorded();
        assert_eq!(total as usize, drained.len());
        assert!(e.events().is_empty());
        let status = e.status_json();
        let events = status.get("events").unwrap();
        assert_eq!(events.get("total").and_then(|v| v.as_u64()), Some(total));
        assert_eq!(
            events
                .get("recent")
                .and_then(|v| v.as_arr())
                .map(|a| a.len()),
            Some(0)
        );
    }
}
