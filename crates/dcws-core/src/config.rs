//! Server configuration — Table 1 of the paper plus the knobs the paper
//! leaves implicit (overload detection, piggyback fan-out) and the
//! extensions we implement for ablations (eager migration, hot-spot
//! replication).

use dcws_graph::BalanceMetric;

/// Hot-spot replication (the paper's future-work extension, §6): allow an
/// extremely popular document to be replicated to several co-op servers,
/// with rewrites spreading sources across the replica set.
#[derive(Debug, Clone, PartialEq)]
pub struct HotReplication {
    /// A document is "hot" when it drew more than this fraction of the
    /// server's window hits.
    pub hot_fraction: f64,
    /// Maximum replicas per document (including the first co-op).
    pub max_replicas: usize,
}

impl Default for HotReplication {
    fn default() -> Self {
        HotReplication {
            hot_fraction: 0.25,
            max_replicas: 4,
        }
    }
}

/// All tunables of a DCWS server. Field names follow the paper's notation
/// where one exists.
#[derive(Debug, Clone, PartialEq)]
pub struct ServerConfig {
    /// Number of worker threads, N_wk.
    pub n_workers: usize,
    /// Socket queue length for backlogged requests, L_sq; beyond this the
    /// connection is dropped gracefully with a 503.
    pub socket_queue_len: usize,
    /// Statistics re-calculation interval, T_st (ms). Also the minimum
    /// spacing between two migrations *from* this home server ("a maximum
    /// of one file per 10 seconds").
    pub stat_interval_ms: u64,
    /// Pinger thread activation interval, T_pi (ms): peers silent longer
    /// than this get an artificial transfer.
    pub pinger_interval_ms: u64,
    /// Co-op document validation interval, T_val (ms): migrated copies are
    /// re-requested this often for consistency.
    pub validation_interval_ms: u64,
    /// Home re-migration interval, T_home (ms): a migration may be
    /// abandoned and redone no sooner than this.
    pub remigration_interval_ms: u64,
    /// Minimum time between migrations **to** the same co-op server,
    /// T_coop (ms): lets the co-op recalculate its load before accepting
    /// more.
    pub coop_migration_interval_ms: u64,
    /// Which measurement drives balancing decisions (§5.3: CPS for small
    /// files, BPS for Sequoia-sized files).
    pub balance_metric: BalanceMetric,
    /// Algorithm 1 threshold T: minimum window hits to justify migration.
    pub selection_threshold: u64,
    /// Overload test: migrate when our metric exceeds the least-loaded
    /// peer's by this ratio.
    pub overload_ratio: f64,
    /// Don't bother migrating below this CPS — an idle server is balanced
    /// by definition.
    pub min_cps_to_migrate: f64,
    /// Consecutive failed pings before a peer is declared dead and its
    /// documents recalled.
    pub ping_failure_limit: u32,
    /// Maximum GLT entries piggybacked per message (own entry always
    /// included).
    pub piggyback_max: usize,
    /// Ablation: physically push documents at migration time instead of
    /// the paper's lazy pull-on-first-request.
    pub eager_migration: bool,
    /// Ablation: replace Algorithm 1 with naive hottest-first selection
    /// (ignores steps 4–5's link-structure cost minimization).
    pub naive_selection: bool,
    /// Future-work extension: replicate hot documents to several co-ops.
    pub hot_replication: Option<HotReplication>,
    /// How many structured engine events to retain in the in-memory ring
    /// buffer (see `dcws_core::events`). `0` disables retention; events
    /// are still counted but never stored.
    pub event_log_capacity: usize,
    /// Total byte budget shared by the two document caches (regenerated
    /// home bodies and pulled co-op copies, half each). `u64::MAX`
    /// disables eviction; the paper's testbed never filled memory, so
    /// the default is generous rather than unbounded.
    pub cache_budget_bytes: u64,
    /// Bodies at or above this size are served by the streaming path
    /// (chunked reads straight from the [`DocStore`](crate::DocStore),
    /// bypassing the regen cache and serve table) instead of being
    /// buffered whole. `0` disables streaming. The default keeps every
    /// LOD document buffered and streams only Sequoia-class objects.
    pub stream_threshold_bytes: u64,
    /// Cache admission rule: an object costing more than this fraction
    /// of one cache shard's budget is never admitted to the LRU (served
    /// pass-through instead), so a single Sequoia image cannot evict a
    /// shard's whole small-document working set. `1.0` admits anything
    /// that fits a shard — the pre-streaming behaviour.
    pub cache_admit_fraction: f64,
}

impl ServerConfig {
    /// The exact parameter values of Table 1.
    pub fn paper_defaults() -> Self {
        ServerConfig {
            n_workers: 12,
            socket_queue_len: 100,
            stat_interval_ms: 10_000,
            pinger_interval_ms: 20_000,
            validation_interval_ms: 120_000,
            remigration_interval_ms: 300_000,
            coop_migration_interval_ms: 60_000,
            balance_metric: BalanceMetric::Cps,
            selection_threshold: 10,
            overload_ratio: 1.5,
            min_cps_to_migrate: 1.0,
            ping_failure_limit: 3,
            piggyback_max: 8,
            eager_migration: false,
            naive_selection: false,
            hot_replication: None,
            event_log_capacity: 512,
            cache_budget_bytes: 64 * 1024 * 1024,
            stream_threshold_bytes: 256 * 1024,
            cache_admit_fraction: 0.25,
        }
    }
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig::paper_defaults()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_defaults_match_table_1() {
        let c = ServerConfig::paper_defaults();
        assert_eq!(c.n_workers, 12);
        assert_eq!(c.socket_queue_len, 100);
        assert_eq!(c.stat_interval_ms, 10_000);
        assert_eq!(c.pinger_interval_ms, 20_000);
        assert_eq!(c.validation_interval_ms, 120_000);
        assert_eq!(c.remigration_interval_ms, 300_000);
        assert_eq!(c.coop_migration_interval_ms, 60_000);
        assert_eq!(c.balance_metric, BalanceMetric::Cps);
        assert!(!c.eager_migration);
        assert!(c.hot_replication.is_none());
        assert_eq!(c.cache_budget_bytes, 64 * 1024 * 1024);
        assert_eq!(c.stream_threshold_bytes, 256 * 1024);
        assert!((c.cache_admit_fraction - 0.25).abs() < 1e-12);
    }

    #[test]
    fn default_is_paper_defaults() {
        assert_eq!(ServerConfig::default(), ServerConfig::paper_defaults());
    }

    #[test]
    fn hot_replication_defaults_sane() {
        let h = HotReplication::default();
        assert!(h.hot_fraction > 0.0 && h.hot_fraction < 1.0);
        assert!(h.max_replicas >= 2);
    }
}
