//! Parametric synthetic site generator.
//!
//! The four paper datasets pin their structure to published statistics;
//! this generator produces *families* of sites for the ablation and tuning
//! experiments (Table 2 sweeps, hot-spot replication study), where we need
//! to dial document count, fan-out, size, and hot-spot sharing
//! independently.

use crate::spec::{Dataset, DocSpec, PageKind};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Parameters for [`uniform_site`].
#[derive(Debug, Clone)]
pub struct SyntheticConfig {
    /// Number of HTML pages (excluding the entry index).
    pub pages: usize,
    /// Number of images.
    pub images: usize,
    /// Hyperlinks per page to random other pages.
    pub fanout: usize,
    /// Embedded image references per page, drawn from the image pool.
    /// With `images == 1` every page shares one image — the SBLog hot-spot
    /// regime; with `images >= pages * embeds` no image is shared — the
    /// LOD regime.
    pub embeds: usize,
    /// HTML page size in bytes.
    pub page_bytes: u64,
    /// Image size in bytes.
    pub image_bytes: u64,
}

impl Default for SyntheticConfig {
    fn default() -> Self {
        SyntheticConfig {
            pages: 100,
            images: 50,
            fanout: 5,
            embeds: 2,
            page_bytes: 4096,
            image_bytes: 2048,
        }
    }
}

/// Generate a uniform random site: one entry index linking to every page,
/// pages cross-linked uniformly at random with `fanout` anchors and
/// `embeds` image references each.
pub fn uniform_site(cfg: &SyntheticConfig, seed: u64) -> Dataset {
    assert!(cfg.pages > 0, "need at least one page");
    let mut rng = StdRng::seed_from_u64(seed ^ 0x53_59_4e);
    let page_name = |i: usize| format!("/pages/p{i:05}.html");
    let image_name = |i: usize| format!("/img/i{i:05}.gif");

    let mut docs = Vec::with_capacity(1 + cfg.pages + cfg.images);
    docs.push(DocSpec {
        name: "/index.html".into(),
        size: (cfg.pages as u64) * 40 + 256,
        kind: PageKind::Html,
        anchors: (0..cfg.pages).map(page_name).collect(),
        embeds: vec![],
        entry_point: true,
    });
    for i in 0..cfg.images {
        docs.push(DocSpec {
            name: image_name(i),
            size: cfg.image_bytes,
            kind: PageKind::Image,
            anchors: vec![],
            embeds: vec![],
            entry_point: false,
        });
    }
    for p in 0..cfg.pages {
        let anchors = (0..cfg.fanout)
            .map(|_| page_name(rng.gen_range(0..cfg.pages)))
            .chain(std::iter::once("/index.html".to_string()))
            .collect();
        let embeds = if cfg.images == 0 {
            vec![]
        } else {
            (0..cfg.embeds)
                .map(|_| image_name(rng.gen_range(0..cfg.images)))
                .collect()
        };
        docs.push(DocSpec {
            name: page_name(p),
            size: cfg.page_bytes,
            kind: PageKind::Html,
            anchors,
            embeds,
            entry_point: false,
        });
    }
    Dataset::new("synthetic", docs)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_site_is_consistent() {
        let d = uniform_site(&SyntheticConfig::default(), 1);
        assert_eq!(d.doc_count(), 151);
        assert_eq!(d.check_links(), None);
        assert_eq!(d.entry_points().len(), 1);
    }

    #[test]
    fn hot_spot_regime_single_image() {
        let cfg = SyntheticConfig {
            images: 1,
            embeds: 3,
            ..Default::default()
        };
        let d = uniform_site(&cfg, 1);
        let shared: usize = d
            .docs
            .iter()
            .map(|x| x.embeds.iter().filter(|e| *e == "/img/i00000.gif").count())
            .sum();
        assert_eq!(shared, 300, "every embed hits the one image");
    }

    #[test]
    fn no_images_config() {
        let cfg = SyntheticConfig {
            images: 0,
            embeds: 5,
            ..Default::default()
        };
        let d = uniform_site(&cfg, 1);
        assert_eq!(d.image_count(), 0);
        assert_eq!(d.check_links(), None);
    }

    #[test]
    fn deterministic_per_seed() {
        let cfg = SyntheticConfig::default();
        assert_eq!(uniform_site(&cfg, 9).docs, uniform_site(&cfg, 9).docs);
        assert_ne!(uniform_site(&cfg, 9).docs, uniform_site(&cfg, 10).docs);
    }

    #[test]
    #[should_panic(expected = "at least one page")]
    fn zero_pages_panics() {
        uniform_site(
            &SyntheticConfig {
                pages: 0,
                ..Default::default()
            },
            1,
        );
    }
}
