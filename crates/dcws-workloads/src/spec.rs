//! Dataset and document specifications.

use std::collections::HashMap;

/// Coarse document class.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PageKind {
    /// An HTML page; hyperlinks may be rewritten by DCWS.
    Html,
    /// An image (GIF/JPEG/raster); opaque bytes.
    Image,
}

/// One document in a dataset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DocSpec {
    /// Canonical name: absolute path, e.g. `/archive/msg0042.html`.
    pub name: String,
    /// Target content size in bytes (materialization pads/uses exactly
    /// this many bytes whenever the markup fits).
    pub size: u64,
    /// Document class.
    pub kind: PageKind,
    /// Hyperlink targets (`<a href>`): followed on user action.
    pub anchors: Vec<String>,
    /// Embedded targets (`<img src>`): fetched automatically with the page.
    pub embeds: Vec<String>,
    /// Well-known entry point (published URL; never migrated).
    pub entry_point: bool,
}

impl DocSpec {
    /// Every outgoing reference, anchors then embeds.
    pub fn all_links(&self) -> impl Iterator<Item = &str> {
        self.anchors
            .iter()
            .chain(self.embeds.iter())
            .map(String::as_str)
    }

    /// Total outgoing reference count.
    pub fn link_count(&self) -> usize {
        self.anchors.len() + self.embeds.len()
    }
}

/// A complete dataset: a named collection of documents forming a site.
#[derive(Debug, Clone)]
pub struct Dataset {
    /// Short name (`mapug`, `sblog`, `lod`, `sequoia`, or custom).
    pub name: String,
    /// All documents.
    pub docs: Vec<DocSpec>,
    index: HashMap<String, usize>,
}

impl Dataset {
    /// Build a dataset from parts, indexing by name.
    ///
    /// # Panics
    /// Panics on duplicate document names — generators must not collide.
    pub fn new(name: impl Into<String>, docs: Vec<DocSpec>) -> Self {
        let mut index = HashMap::with_capacity(docs.len());
        for (i, d) in docs.iter().enumerate() {
            let prev = index.insert(d.name.clone(), i);
            assert!(prev.is_none(), "duplicate document name {}", d.name);
        }
        Dataset {
            name: name.into(),
            docs,
            index,
        }
    }

    /// Construct one of the four paper datasets by name.
    pub fn by_name(name: &str, seed: u64) -> Option<Dataset> {
        match name {
            "mapug" => Some(Dataset::mapug(seed)),
            "sblog" => Some(Dataset::sblog(seed)),
            "lod" => Some(Dataset::lod(seed)),
            "sequoia" => Some(Dataset::sequoia(seed)),
            _ => None,
        }
    }

    /// Look up a document by name.
    pub fn get(&self, name: &str) -> Option<&DocSpec> {
        self.index.get(name).map(|&i| &self.docs[i])
    }

    /// Number of documents.
    pub fn doc_count(&self) -> usize {
        self.docs.len()
    }

    /// Number of image documents.
    pub fn image_count(&self) -> usize {
        self.docs
            .iter()
            .filter(|d| d.kind == PageKind::Image)
            .count()
    }

    /// Total outgoing references across all documents.
    pub fn total_links(&self) -> usize {
        self.docs.iter().map(|d| d.link_count()).sum()
    }

    /// Aggregate content size in bytes.
    pub fn total_bytes(&self) -> u64 {
        self.docs.iter().map(|d| d.size).sum()
    }

    /// Average document size in bytes.
    pub fn avg_doc_size(&self) -> f64 {
        if self.docs.is_empty() {
            0.0
        } else {
            self.total_bytes() as f64 / self.docs.len() as f64
        }
    }

    /// The well-known entry points.
    pub fn entry_points(&self) -> Vec<&DocSpec> {
        self.docs.iter().filter(|d| d.entry_point).collect()
    }

    /// Verify referential integrity: every link target names a document in
    /// the dataset. Returns the first dangling reference, if any.
    pub fn check_links(&self) -> Option<(String, String)> {
        for d in &self.docs {
            for l in d.all_links() {
                if !self.index.contains_key(l) {
                    return Some((d.name.clone(), l.to_string()));
                }
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn doc(name: &str, anchors: &[&str]) -> DocSpec {
        DocSpec {
            name: name.into(),
            size: 100,
            kind: PageKind::Html,
            anchors: anchors.iter().map(|s| s.to_string()).collect(),
            embeds: vec![],
            entry_point: false,
        }
    }

    #[test]
    fn dataset_indexing() {
        let d = Dataset::new("t", vec![doc("/a", &["/b"]), doc("/b", &[])]);
        assert_eq!(d.get("/a").unwrap().anchors, vec!["/b".to_string()]);
        assert!(d.get("/c").is_none());
        assert_eq!(d.doc_count(), 2);
        assert_eq!(d.total_links(), 1);
        assert_eq!(d.total_bytes(), 200);
    }

    #[test]
    #[should_panic(expected = "duplicate")]
    fn duplicate_names_panic() {
        Dataset::new("t", vec![doc("/a", &[]), doc("/a", &[])]);
    }

    #[test]
    fn check_links_finds_dangling() {
        let d = Dataset::new("t", vec![doc("/a", &["/missing"])]);
        assert_eq!(
            d.check_links(),
            Some(("/a".to_string(), "/missing".to_string()))
        );
        let ok = Dataset::new("t", vec![doc("/a", &[])]);
        assert_eq!(ok.check_links(), None);
    }

    #[test]
    fn entry_points_filter() {
        let mut e = doc("/idx", &[]);
        e.entry_point = true;
        let d = Dataset::new("t", vec![e, doc("/a", &[])]);
        assert_eq!(d.entry_points().len(), 1);
        assert_eq!(d.entry_points()[0].name, "/idx");
    }
}
