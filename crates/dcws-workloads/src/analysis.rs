//! Site analysis: will this document graph scale under DCWS?
//!
//! The paper's §5.3 conclusion is that *"data distribution and data access
//! characteristics have significant impact on the performance, and hot
//! spots can limit the potential parallelism"* — LOD and Sequoia scale
//! linearly, SBLog and MAPUG do not, and you can see why in the link
//! structure alone. This module extracts exactly those structural
//! predictors from a [`Dataset`], so an operator can audit a site before
//! deploying it on a DCWS group.

use crate::spec::{Dataset, PageKind};
use std::collections::HashMap;

/// A document that many others reference — a migration hot spot in the
/// making, since DCWS places each document on exactly one co-op.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HotSpot {
    /// Document name.
    pub name: String,
    /// Number of documents referencing it.
    pub referrers: usize,
    /// Whether it is an embedded object (fetched automatically with every
    /// page that shows it — the worst kind of hot spot).
    pub embedded: bool,
}

/// Structural summary of a dataset.
#[derive(Debug, Clone)]
pub struct SiteAnalysis {
    /// Total documents.
    pub docs: usize,
    /// Total outgoing references.
    pub links: usize,
    /// Aggregate bytes.
    pub bytes: u64,
    /// Mean document size.
    pub avg_doc_bytes: f64,
    /// Entry-point count (pinned to the home server forever).
    pub entry_points: usize,
    /// Coverage of the most-referenced document: the fraction of all
    /// documents that reference it. Under Algorithm-2 clients with
    /// per-session caching, a document with coverage near 1.0 is fetched
    /// roughly once per session — and it lives on exactly one server.
    pub max_coverage: f64,
    /// Documents referenced by at least `hot_threshold` others, most
    /// referenced first.
    pub hot_spots: Vec<HotSpot>,
    /// The referrer count used to cut [`SiteAnalysis::hot_spots`].
    pub hot_threshold: usize,
}

/// Expected distinct documents fetched per Algorithm-2 session (entry +
/// an average walk of (1+25)/2 steps, deduplicated by the client cache).
const EXPECTED_SESSION_DOCS: f64 = 14.0;

impl SiteAnalysis {
    /// Estimated share of a session's requests that hit the hottest
    /// document's host: with per-session caching it is fetched at most
    /// once per session that encounters it (probability ≈ coverage).
    pub fn hot_session_share(&self) -> f64 {
        self.max_coverage / EXPECTED_SESSION_DOCS
    }

    /// Rough upper bound on useful DCWS group size: the hottest document's
    /// single host saturates once the group serves ≈ 1/hot_session_share
    /// server-equivalents of traffic. SBLog's bar graph (coverage ≈ 1.0)
    /// bounds it near 14 servers — matching the paper's observed
    /// flattening between 8 and 16.
    pub fn useful_servers_bound(&self) -> usize {
        let share = self.hot_session_share();
        if share <= 0.0 {
            usize::MAX
        } else {
            (1.0 / share).ceil() as usize
        }
    }

    /// One-line verdict in the spirit of Figure 7.
    pub fn verdict(&self) -> String {
        let bound = self.useful_servers_bound();
        if bound >= 32 {
            format!(
                "scales cleanly: hottest document is referenced by {:.0}% of pages",
                self.max_coverage * 100.0
            )
        } else {
            format!(
                "hot-spot limited: {} document(s) over threshold, hottest referenced by \
                 {:.0}% of pages — expect saturation beyond ~{} servers \
                 (consider replication)",
                self.hot_spots.len(),
                self.max_coverage * 100.0,
                bound
            )
        }
    }
}

/// Analyze `dataset`, flagging documents referenced by at least
/// `hot_threshold` others.
pub fn analyze(dataset: &Dataset, hot_threshold: usize) -> SiteAnalysis {
    let mut referrers: HashMap<&str, usize> = HashMap::new();
    for d in &dataset.docs {
        // Count distinct referrers (a page embedding the same image 110
        // times is one referrer).
        let mut seen: Vec<&str> = d.all_links().collect();
        seen.sort_unstable();
        seen.dedup();
        for l in seen {
            *referrers.entry(l).or_default() += 1;
        }
    }

    let mut hot_spots: Vec<HotSpot> = referrers
        .iter()
        .filter(|(_, &c)| c >= hot_threshold)
        .map(|(&name, &c)| HotSpot {
            name: name.to_string(),
            referrers: c,
            embedded: dataset
                .get(name)
                .map(|d| d.kind == PageKind::Image)
                .unwrap_or(false),
        })
        .collect();
    hot_spots.sort_by(|a, b| b.referrers.cmp(&a.referrers).then(a.name.cmp(&b.name)));
    let max_coverage = if dataset.doc_count() == 0 {
        0.0
    } else {
        referrers.values().copied().max().unwrap_or(0) as f64 / dataset.doc_count() as f64
    };
    SiteAnalysis {
        docs: dataset.doc_count(),
        links: dataset.total_links(),
        bytes: dataset.total_bytes(),
        avg_doc_bytes: dataset.avg_doc_size(),
        entry_points: dataset.entry_points().len(),
        max_coverage,
        hot_spots,
        hot_threshold,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::Dataset;

    #[test]
    fn sblog_flagged_as_hot_spot_limited() {
        let a = analyze(&Dataset::sblog(1), 50);
        // The bar-graph JPEG is referenced (distinctly) by ~400 documents.
        assert!(!a.hot_spots.is_empty());
        assert_eq!(a.hot_spots[0].name, "/graphs/bar.jpg");
        assert!(a.hot_spots[0].embedded);
        assert!(a.hot_spots[0].referrers > 300);
        assert!(a.max_coverage > 0.9, "coverage {}", a.max_coverage);
        assert!(
            a.useful_servers_bound() <= 16,
            "bound {}",
            a.useful_servers_bound()
        );
        assert!(a.verdict().contains("hot-spot limited"), "{}", a.verdict());
    }

    #[test]
    fn mapug_buttons_flagged() {
        let a = analyze(&Dataset::mapug(1), 500);
        let names: Vec<&str> = a.hot_spots.iter().map(|h| h.name.as_str()).collect();
        assert!(names.contains(&"/buttons/next.gif"), "{names:?}");
        // Footer hubs too: every message links the index pages.
        assert!(names.contains(&"/dates.html"));
    }

    #[test]
    fn lod_scales_cleanly() {
        let a = analyze(&Dataset::lod(1), 50);
        // No image is shared; the most-referenced doc is the index with a
        // modest share.
        assert!(a.hot_spots.iter().all(|h| !h.embedded), "{:?}", a.hot_spots);
        assert!(
            a.useful_servers_bound() > 16,
            "bound {}",
            a.useful_servers_bound()
        );
    }

    #[test]
    fn sequoia_has_no_hot_spots() {
        let a = analyze(&Dataset::sequoia(1), 2);
        assert!(a.hot_spots.is_empty());
        // Every raster is referenced by exactly one page (the index).
        assert!(
            a.useful_servers_bound() > 100,
            "bound {}",
            a.useful_servers_bound()
        );
    }

    #[test]
    fn duplicate_embeds_count_once() {
        use crate::spec::{DocSpec, PageKind};
        let d = Dataset::new(
            "t",
            vec![
                DocSpec {
                    name: "/p.html".into(),
                    size: 10,
                    kind: PageKind::Html,
                    anchors: vec![],
                    embeds: vec!["/i.gif".into(); 100],
                    entry_point: true,
                },
                DocSpec {
                    name: "/i.gif".into(),
                    size: 10,
                    kind: PageKind::Image,
                    anchors: vec![],
                    embeds: vec![],
                    entry_point: false,
                },
            ],
        );
        let a = analyze(&d, 1);
        assert_eq!(a.hot_spots[0].referrers, 1, "one page = one referrer");
    }

    #[test]
    fn empty_dataset_analysis() {
        let d = Dataset::new("t", vec![]);
        let a = analyze(&d, 1);
        assert_eq!(a.max_coverage, 0.0);
        assert_eq!(a.useful_servers_bound(), usize::MAX);
        assert!(a.verdict().contains("scales cleanly"));
    }
}
