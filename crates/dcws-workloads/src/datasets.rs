//! Generators for the four paper datasets (§5.2), calibrated to every
//! published statistic.
//!
//! Each generator builds the dataset's characteristic *structure* first
//! (the part the results depend on), then runs a calibration pass that
//! tops up link and byte counts with structure-neutral filler ("see also"
//! anchors, larger message bodies) until the published totals are met.

use crate::spec::{Dataset, DocSpec, PageKind};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Published statistics we calibrate against.
pub mod targets {
    /// MAPUG: 1,534 documents.
    pub const MAPUG_DOCS: usize = 1_534;
    /// MAPUG: 28,998 links.
    pub const MAPUG_LINKS: usize = 28_998;
    /// MAPUG: 5,918 KB aggregate.
    pub const MAPUG_BYTES: u64 = 5_918 * 1024;
    /// SBLog: 402 documents.
    pub const SBLOG_DOCS: usize = 402;
    /// SBLog: 57,531 links.
    pub const SBLOG_LINKS: usize = 57_531;
    /// SBLog: 8,468 KB aggregate.
    pub const SBLOG_BYTES: u64 = 8_468 * 1024;
    /// LOD: 349 documents.
    pub const LOD_DOCS: usize = 349;
    /// LOD: 240 of them are images.
    pub const LOD_IMAGES: usize = 240;
    /// LOD: 1,433 links.
    pub const LOD_LINKS: usize = 1_433;
    /// LOD: 750 KB aggregate.
    pub const LOD_BYTES: u64 = 750 * 1024;
    /// Sequoia: 130 raster images.
    pub const SEQUOIA_IMAGES: usize = 130;
}

fn html(name: String, size: u64, entry: bool) -> DocSpec {
    DocSpec {
        name,
        size,
        kind: PageKind::Html,
        anchors: vec![],
        embeds: vec![],
        entry_point: entry,
    }
}

fn image(name: String, size: u64) -> DocSpec {
    DocSpec {
        name,
        size,
        kind: PageKind::Image,
        anchors: vec![],
        embeds: vec![],
        entry_point: false,
    }
}

/// Calibration: add "see also" anchors from random HTML docs (indices in
/// `sources`) to random targets until the dataset's link total reaches
/// `target`. Anchors never originate from images.
fn add_filler_links(
    docs: &mut [DocSpec],
    sources: &[usize],
    candidates: &[String],
    target: usize,
    rng: &mut StdRng,
) {
    let mut current: usize = docs.iter().map(|d| d.link_count()).sum();
    assert!(
        current <= target,
        "base structure overshoots link target: {current} > {target}"
    );
    while current < target {
        let s = sources[rng.gen_range(0..sources.len())];
        let t = &candidates[rng.gen_range(0..candidates.len())];
        docs[s].anchors.push(t.clone());
        current += 1;
    }
}

/// Calibration: distribute remaining bytes across the given doc indices so
/// the dataset total hits `target` exactly.
fn pad_sizes(docs: &mut [DocSpec], pool: &[usize], target: u64) {
    let current: u64 = docs.iter().map(|d| d.size).sum();
    assert!(
        current <= target,
        "base sizes overshoot byte target: {current} > {target}"
    );
    let deficit = target - current;
    let per = deficit / pool.len() as u64;
    let mut rem = deficit % pool.len() as u64;
    for &i in pool {
        docs[i].size += per;
        if rem > 0 {
            docs[i].size += 1;
            rem -= 1;
        }
    }
}

impl Dataset {
    /// *MAPUG Mailing List Archive*: threaded e-mail discussions with
    /// next/prev/thread navigation buttons. The 5 shared button GIFs are
    /// linked from every message — "among the first pages migrated by the
    /// server", and a mild hot spot.
    pub fn mapug(seed: u64) -> Dataset {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x004d_4150_5547);
        const BUTTONS: [&str; 5] = ["next", "prev", "thread_next", "thread_prev", "index"];
        let n_msgs = targets::MAPUG_DOCS - BUTTONS.len() - 4; // 1525 messages

        let mut docs: Vec<DocSpec> = Vec::with_capacity(targets::MAPUG_DOCS);
        // Button images, ~1 KB each.
        for b in BUTTONS {
            docs.push(image(
                format!("/buttons/{b}.gif"),
                900 + rng.gen_range(0..200),
            ));
        }
        // Index pages. The main index and thread index are the published
        // entry points.
        docs.push(html("/index.html".into(), 14_000, true));
        docs.push(html("/threads.html".into(), 14_000, true));
        docs.push(html("/dates.html".into(), 70_000, false));
        docs.push(html("/authors.html".into(), 70_000, false));
        let idx_index = 5;
        let idx_threads = 6;
        let idx_dates = 7;
        let idx_authors = 8;

        // Messages, grouped into threads of 2..12.
        let msg_name = |i: usize| format!("/archive/msg{i:04}.html");
        let mut thread_heads: Vec<usize> = Vec::new();
        let mut thread_of: Vec<usize> = Vec::with_capacity(n_msgs); // msg -> head msg index
        {
            let mut i = 0;
            while i < n_msgs {
                let len = rng.gen_range(2..=12).min(n_msgs - i);
                thread_heads.push(i);
                for j in 0..len {
                    thread_of.push(i);
                    let _ = j;
                }
                i += len;
            }
        }
        let first_msg_doc = docs.len();
        for i in 0..n_msgs {
            // Message bodies: mostly text, 1.5–4 KB before calibration.
            let size = rng.gen_range(1_500..4_000);
            docs.push(html(msg_name(i), size, false));
        }

        // Per-message navigation structure.
        for i in 0..n_msgs {
            let d = first_msg_doc + i;
            let head = thread_of[i];
            let mut anchors = Vec::with_capacity(8);
            if i > 0 {
                anchors.push(msg_name(i - 1)); // prev
            }
            if i + 1 < n_msgs {
                anchors.push(msg_name(i + 1)); // next
            }
            if i > head {
                anchors.push(msg_name(i - 1).clone()); // thread_prev (≈ prev inside thread)
                anchors.push(msg_name(head)); // in-reply-to the thread head
            }
            if i + 1 < n_msgs && thread_of[i + 1] == head {
                anchors.push(msg_name(i + 1)); // thread_next
            }
            // Footer navigation present on every archive page.
            anchors.push("/index.html".into());
            anchors.push("/threads.html".into());
            anchors.push("/dates.html".into());
            anchors.push("/authors.html".into());
            docs[d].anchors = anchors;
            docs[d].embeds = BUTTONS
                .iter()
                .map(|b| format!("/buttons/{b}.gif"))
                .collect();
        }
        // Index page contents.
        docs[idx_index].anchors = thread_heads
            .iter()
            .map(|&h| msg_name(h))
            .chain([
                "/threads.html".into(),
                "/dates.html".into(),
                "/authors.html".into(),
            ])
            .collect();
        docs[idx_threads].anchors = thread_heads.iter().map(|&h| msg_name(h)).collect();
        docs[idx_dates].anchors = (0..n_msgs).map(msg_name).collect();
        docs[idx_authors].anchors = (0..n_msgs).map(msg_name).collect();

        // Calibrate links: extra "References:" anchors between messages.
        let sources: Vec<usize> = (first_msg_doc..docs.len()).collect();
        let candidates: Vec<String> = (0..n_msgs).map(msg_name).collect();
        add_filler_links(
            &mut docs,
            &sources,
            &candidates,
            targets::MAPUG_LINKS,
            &mut rng,
        );
        // Calibrate bytes over message bodies.
        pad_sizes(&mut docs, &sources, targets::MAPUG_BYTES);

        Dataset::new("mapug", docs)
    }

    /// *SBLog Web Statistics*: a webalizer-style report. Entirely text
    /// except **one** JPEG used to draw every bar graph — referenced from
    /// nearly every row of every page, the archetypal hot spot that caps
    /// scalability in Figure 7.
    pub fn sblog(seed: u64) -> Dataset {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x0053_424c_4f47);
        const BAR: &str = "/graphs/bar.jpg";
        let n_details = targets::SBLOG_DOCS - 5; // 397 per-file detail pages

        let mut docs: Vec<DocSpec> = Vec::with_capacity(targets::SBLOG_DOCS);
        docs.push(image(BAR.into(), 2_048));
        docs.push(html("/index.html".into(), 24_000, true));
        docs.push(html("/by_date.html".into(), 24_000, false));
        docs.push(html("/by_ip.html".into(), 24_000, false));
        docs.push(html("/by_dir.html".into(), 24_000, false));
        let overviews = [1usize, 2, 3, 4];

        let detail_name = |i: usize| format!("/details/file{i:04}.html");
        let first_detail = docs.len();
        for i in 0..n_details {
            // Big tabular pages, ~14–18 KB before calibration.
            let size = rng.gen_range(14_000..18_000);
            docs.push(html(detail_name(i), size, false));
        }
        // Detail pages: ~110 bar-graph cells + navigation anchors.
        for i in 0..n_details {
            let d = first_detail + i;
            let bars = rng.gen_range(100..120);
            docs[d].embeds = vec![BAR.to_string(); bars];
            let mut anchors = vec![
                "/index.html".to_string(),
                "/by_date.html".to_string(),
                "/by_ip.html".to_string(),
                "/by_dir.html".to_string(),
            ];
            if i > 0 {
                anchors.push(detail_name(i - 1));
            }
            if i + 1 < n_details {
                anchors.push(detail_name(i + 1));
            }
            docs[d].anchors = anchors;
        }
        // Overviews: link to every detail page, plus a few bars each.
        for &o in &overviews {
            docs[o].anchors = (0..n_details).map(detail_name).collect();
            docs[o].embeds = vec![BAR.to_string(); 25];
        }
        docs[1]
            .anchors
            .extend(["/by_date.html", "/by_ip.html", "/by_dir.html"].map(String::from));

        let sources: Vec<usize> = (first_detail..docs.len()).collect();
        let candidates: Vec<String> = (0..n_details).map(detail_name).collect();
        add_filler_links(
            &mut docs,
            &sources,
            &candidates,
            targets::SBLOG_LINKS,
            &mut rng,
        );
        pad_sizes(&mut docs, &sources, targets::SBLOG_BYTES);

        Dataset::new("sblog", docs)
    }

    /// *LOD Role-Playing Adventure Guide*: a graphical game database. Six
    /// table pages each show ~40 thumbnails; image sizes are bimodal
    /// (half ≈1.5 KB, half ≈3.5 KB). No hot spots — every image is
    /// referenced from exactly one table page — which is why the paper
    /// uses LOD for the linear-scalability experiments (Fig. 6).
    pub fn lod(seed: u64) -> Dataset {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x004c_4f44);
        let n_tables = 6usize;
        let n_images = targets::LOD_IMAGES; // 240
        let n_content = targets::LOD_DOCS - 1 - n_tables - n_images; // 102

        let mut docs: Vec<DocSpec> = Vec::with_capacity(targets::LOD_DOCS);
        docs.push(html("/index.html".into(), 2_200, true));
        let table_name = |t: usize| format!("/tables/table{t}.html");
        for t in 0..n_tables {
            docs.push(html(table_name(t), 2_600, false));
        }
        let image_name = |i: usize| format!("/thumbs/item{i:03}.gif");
        for i in 0..n_images {
            // Bimodal: half ~1.5 KB, half ~3.5 KB (±10 %).
            let base: i64 = if i % 2 == 0 { 1_536 } else { 3_584 };
            let jitter = rng.gen_range(-150..150);
            docs.push(image(image_name(i), (base + jitter) as u64));
        }
        let content_name = |c: usize| format!("/guide/page{c:03}.html");
        let first_content = docs.len();
        for c in 0..n_content {
            docs.push(html(content_name(c), 1_000, false));
        }

        // Each table page embeds its 40 thumbnails and links onward.
        let per_table = n_images / n_tables; // 40
        for t in 0..n_tables {
            let d = 1 + t;
            docs[d].embeds = (0..per_table)
                .map(|k| image_name(t * per_table + k))
                .collect();
            docs[d].anchors = vec!["/index.html".into(), table_name((t + 1) % n_tables)];
        }
        // Index links to tables and a sample of content pages.
        docs[0].anchors = (0..n_tables)
            .map(table_name)
            .chain((0..n_content.min(20)).map(content_name))
            .collect();
        // Content pages: small nav cluster.
        for c in 0..n_content {
            let d = first_content + c;
            let mut anchors = vec!["/index.html".to_string(), table_name(c % n_tables)];
            if c > 0 {
                anchors.push(content_name(c - 1));
            }
            if c + 1 < n_content {
                anchors.push(content_name(c + 1));
            }
            docs[d].anchors = anchors;
        }

        let sources: Vec<usize> = (first_content..docs.len()).collect();
        let candidates: Vec<String> = (0..n_content).map(content_name).collect();
        add_filler_links(
            &mut docs,
            &sources,
            &candidates,
            targets::LOD_LINKS,
            &mut rng,
        );
        let html_pool: Vec<usize> = (0..docs.len())
            .filter(|&i| docs[i].kind == PageKind::Html)
            .collect();
        pad_sizes(&mut docs, &html_pool, targets::LOD_BYTES);

        Dataset::new("lod", docs)
    }

    /// *Sequoia 2000 storage benchmark rasters*: 130 compressed AVHRR
    /// satellite images of 1–2.8 MB behind a single front page with one
    /// hyperlink per image. Large transfers amortize connection overhead,
    /// giving the highest BPS and lowest CPS of the four datasets (§5.3).
    pub fn sequoia(seed: u64) -> Dataset {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x0053_4551);
        let mut docs: Vec<DocSpec> = Vec::with_capacity(targets::SEQUOIA_IMAGES + 1);
        let image_name = |i: usize| format!("/raster/avhrr{i:03}.img");
        docs.push(html("/index.html".into(), 12_000, true));
        for i in 0..targets::SEQUOIA_IMAGES {
            docs.push(image(image_name(i), rng.gen_range(1_000_000..2_800_000)));
        }
        docs[0].anchors = (0..targets::SEQUOIA_IMAGES).map(image_name).collect();
        Dataset::new("sequoia", docs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn within(actual: f64, target: f64, pct: f64) -> bool {
        (actual - target).abs() <= target * pct / 100.0
    }

    #[test]
    fn mapug_matches_published_stats() {
        let d = Dataset::mapug(1);
        assert_eq!(d.doc_count(), targets::MAPUG_DOCS);
        assert_eq!(d.total_links(), targets::MAPUG_LINKS);
        assert_eq!(d.total_bytes(), targets::MAPUG_BYTES);
        assert_eq!(d.image_count(), 5, "4-6 button images");
        assert_eq!(d.check_links(), None);
        assert_eq!(d.entry_points().len(), 2);
    }

    #[test]
    fn mapug_buttons_linked_from_every_message() {
        let d = Dataset::mapug(1);
        let n_msgs = d
            .docs
            .iter()
            .filter(|x| x.name.starts_with("/archive/"))
            .count();
        let refs_to_next = d
            .docs
            .iter()
            .flat_map(|x| x.embeds.iter())
            .filter(|e| *e == "/buttons/next.gif")
            .count();
        assert_eq!(
            refs_to_next, n_msgs,
            "hot-spot structure: button on every message"
        );
    }

    #[test]
    fn sblog_matches_published_stats() {
        let d = Dataset::sblog(1);
        assert_eq!(d.doc_count(), targets::SBLOG_DOCS);
        assert_eq!(d.total_links(), targets::SBLOG_LINKS);
        assert_eq!(d.total_bytes(), targets::SBLOG_BYTES);
        assert_eq!(d.image_count(), 1, "entirely text except one JPEG");
        assert_eq!(d.check_links(), None);
    }

    #[test]
    fn sblog_jpeg_is_extremely_popular() {
        let d = Dataset::sblog(1);
        let bar_refs: usize = d
            .docs
            .iter()
            .map(|x| x.embeds.iter().filter(|e| *e == "/graphs/bar.jpg").count())
            .sum();
        // The overwhelming majority of all links point at the one JPEG.
        assert!(
            bar_refs as f64 > 0.7 * d.total_links() as f64,
            "bar refs {bar_refs} of {}",
            d.total_links()
        );
    }

    #[test]
    fn lod_matches_published_stats() {
        let d = Dataset::lod(1);
        assert_eq!(d.doc_count(), targets::LOD_DOCS);
        assert_eq!(d.image_count(), targets::LOD_IMAGES);
        assert_eq!(d.total_links(), targets::LOD_LINKS);
        assert_eq!(d.total_bytes(), targets::LOD_BYTES);
        assert_eq!(d.check_links(), None);
    }

    #[test]
    fn lod_images_bimodal() {
        let d = Dataset::lod(1);
        let sizes: Vec<u64> = d
            .docs
            .iter()
            .filter(|x| x.kind == PageKind::Image)
            .map(|x| x.size)
            .collect();
        let small = sizes.iter().filter(|&&s| s < 2_500).count();
        let large = sizes.len() - small;
        assert_eq!(small, 120);
        assert_eq!(large, 120);
        let small_avg = sizes.iter().filter(|&&s| s < 2_500).sum::<u64>() as f64 / small as f64;
        let large_avg = sizes.iter().filter(|&&s| s >= 2_500).sum::<u64>() as f64 / large as f64;
        assert!(within(small_avg, 1_536.0, 10.0), "small avg {small_avg}");
        assert!(within(large_avg, 3_584.0, 10.0), "large avg {large_avg}");
    }

    #[test]
    fn lod_has_no_hot_spot() {
        // Every image referenced exactly once.
        let d = Dataset::lod(1);
        let mut refs: std::collections::HashMap<&str, usize> = Default::default();
        for doc in &d.docs {
            for e in &doc.embeds {
                *refs.entry(e.as_str()).or_default() += 1;
            }
        }
        assert!(refs.values().all(|&c| c == 1), "no image is shared");
        assert_eq!(refs.len(), 240);
    }

    #[test]
    fn sequoia_matches_published_stats() {
        let d = Dataset::sequoia(1);
        assert_eq!(d.doc_count(), targets::SEQUOIA_IMAGES + 1);
        assert_eq!(d.image_count(), targets::SEQUOIA_IMAGES);
        assert_eq!(d.total_links(), targets::SEQUOIA_IMAGES);
        assert_eq!(d.check_links(), None);
        for img in d.docs.iter().filter(|x| x.kind == PageKind::Image) {
            assert!(
                (1_000_000..2_800_000).contains(&img.size),
                "1–2.8 MB range: {}",
                img.size
            );
        }
    }

    #[test]
    fn average_sizes_ordered_like_paper() {
        // §5.3: BPS order Sequoia > SBLog > MAPUG > LOD follows average
        // document size; verify the generators preserve that order.
        let seq = Dataset::sequoia(1).avg_doc_size();
        let sb = Dataset::sblog(1).avg_doc_size();
        let ma = Dataset::mapug(1).avg_doc_size();
        let lo = Dataset::lod(1).avg_doc_size();
        assert!(seq > sb && sb > ma && ma > lo, "{seq} {sb} {ma} {lo}");
    }

    #[test]
    fn generators_are_deterministic() {
        let a = Dataset::mapug(7);
        let b = Dataset::mapug(7);
        assert_eq!(a.docs, b.docs);
        let c = Dataset::mapug(8);
        assert_ne!(a.docs, c.docs, "different seeds differ");
    }

    #[test]
    fn all_entry_points_are_html() {
        for n in ["mapug", "sblog", "lod", "sequoia"] {
            let d = Dataset::by_name(n, 3).unwrap();
            assert!(!d.entry_points().is_empty(), "{n} has an entry point");
            assert!(d.entry_points().iter().all(|e| e.kind == PageKind::Html));
        }
    }

    #[test]
    fn every_doc_reachable_from_entry_points() {
        // The benchmark client walks hyperlinks from entry points; embedded
        // images are fetched with their page. Everything must be reachable
        // or it would never receive load.
        for n in ["mapug", "sblog", "lod", "sequoia"] {
            let d = Dataset::by_name(n, 3).unwrap();
            let mut seen: std::collections::HashSet<&str> = Default::default();
            let mut stack: Vec<&str> = d.entry_points().iter().map(|e| e.name.as_str()).collect();
            for s in &stack {
                seen.insert(s);
            }
            while let Some(cur) = stack.pop() {
                if let Some(doc) = d.get(cur) {
                    for l in doc.all_links() {
                        if seen.insert(l) {
                            stack.push(l);
                        }
                    }
                }
            }
            assert_eq!(seen.len(), d.doc_count(), "{n}: unreachable documents");
        }
    }
}
