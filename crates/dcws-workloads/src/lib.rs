//! Synthetic recreations of the four real-life datasets used in the DCWS
//! paper's evaluation (§5.2).
//!
//! The original corpora (served from `www.cs.arizona.edu/dcws` in 1998) are
//! long gone, so each generator rebuilds a dataset with the **published
//! statistics and link topology**:
//!
//! | Dataset | Docs | Links | Aggregate size | Hot-spot structure |
//! |---------|------|-------|----------------|--------------------|
//! | [`Dataset::mapug`] | 1,534 | 28,998 | 5,918 KB | 4–6 shared button GIFs linked from every message |
//! | [`Dataset::sblog`] | 402 | 57,531 | 8,468 KB | one bar-graph JPEG referenced from nearly every page |
//! | [`Dataset::lod`] | 349 (240 images) | 1,433 | 750 KB | none — images bimodal 1.5 KB / 3.5 KB |
//! | [`Dataset::sequoia`] | 131 | 130 | ~247 MB | none — 130 images of 1–2.8 MB |
//!
//! The scalability results of Figure 7 hinge on exactly these structures:
//! LOD and Sequoia scale linearly because no single document dominates,
//! while SBLog and MAPUG saturate whichever co-op server receives the
//! shared images. Generator unit tests assert every published statistic to
//! within 2 %.
//!
//! All generators are deterministic given a seed, so every server in a
//! simulated or real cluster materializes byte-identical documents.

#![warn(missing_docs)]

pub mod analysis;
pub mod datasets;
pub mod materialize;
pub mod spec;
pub mod synthetic;

pub use analysis::{analyze, HotSpot, SiteAnalysis};
pub use spec::{Dataset, DocSpec, PageKind};
pub use synthetic::{uniform_site, SyntheticConfig};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn by_name_finds_all_four() {
        for n in ["mapug", "sblog", "lod", "sequoia"] {
            let d = Dataset::by_name(n, 42).unwrap();
            assert_eq!(d.name, n);
            assert!(d.docs.len() > 100);
        }
        assert!(Dataset::by_name("nope", 42).is_none());
    }
}
