//! Deterministic document materialization.
//!
//! DCWS servers store and rewrite real bytes, so the generators must
//! produce actual content: HTML pages carrying genuine `<a href>` /
//! `<img src>` tags for the spec'd links (padded with filler prose to the
//! spec'd size), and opaque pseudo-random bytes for images. Materialization
//! is a pure function of the spec, so every server in a cluster — and a
//! co-op server re-fetching from a home server — sees identical bytes.

use crate::spec::{DocSpec, PageKind};

/// Filler prose used to pad HTML bodies to their spec'd size.
const FILLER: &str = "The quick brown fox jumps over the lazy dog. \
Pack my box with five dozen liquor jugs. How vexingly quick daft zebras jump. ";

/// Materialize the content bytes for a document.
///
/// * HTML: a page containing one `<a>` per anchor and one `<img>` per
///   embed, padded with prose so `len() == spec.size` whenever the markup
///   fits (otherwise the markup is emitted whole and the result is
///   longer — generators size documents so this doesn't happen for the
///   paper datasets, which unit tests verify).
/// * Images: `spec.size` bytes of seeded pseudo-random data with a GIF-ish
///   magic prefix.
pub fn materialize(spec: &DocSpec) -> Vec<u8> {
    match spec.kind {
        PageKind::Html => materialize_html(spec).into_bytes(),
        PageKind::Image => materialize_image(spec),
    }
}

fn materialize_html(spec: &DocSpec) -> String {
    let mut s = String::with_capacity(spec.size as usize + 128);
    s.push_str("<html><head><title>");
    s.push_str(&spec.name);
    s.push_str("</title></head>\n<body>\n");
    for (i, a) in spec.anchors.iter().enumerate() {
        s.push_str(&format!("<a href=\"{a}\">link {i}</a>\n"));
    }
    for e in &spec.embeds {
        s.push_str(&format!("<img src=\"{e}\" alt=\"embedded\">\n"));
    }
    let tail = "</body></html>\n";
    let target = spec.size as usize;
    let base = s.len() + tail.len();
    if base < target {
        let pad_total = target - base;
        const WRAP: usize = 9; // "<p>\n" + "</p>\n"
        if pad_total >= WRAP {
            s.push_str("<p>\n");
            let mut need = pad_total - WRAP;
            while need > 0 {
                let take = need.min(FILLER.len());
                s.push_str(&FILLER[..take]);
                need -= take;
            }
            s.push_str("</p>\n");
        } else {
            // Too small for the wrapper: pad with whitespace.
            s.extend(std::iter::repeat_n('\n', pad_total));
        }
    }
    s.push_str(tail);
    s
}

fn materialize_image(spec: &DocSpec) -> Vec<u8> {
    let n = spec.size as usize;
    let mut out = Vec::with_capacity(n);
    out.extend_from_slice(b"GIF89a");
    // xorshift64 seeded by the document name, for cheap deterministic
    // "compressed-looking" bytes.
    let mut state: u64 = spec.name.bytes().fold(0x9e37_79b9_7f4a_7c15u64, |h, b| {
        (h ^ b as u64).wrapping_mul(0x100_0000_01b3)
    }) | 1;
    while out.len() < n {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        out.extend_from_slice(&state.to_le_bytes());
    }
    out.truncate(n);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{Dataset, PageKind};
    use dcws_html::{extract_links, LinkKind};

    fn html_spec(size: u64, anchors: &[&str], embeds: &[&str]) -> DocSpec {
        DocSpec {
            name: "/t.html".into(),
            size,
            kind: PageKind::Html,
            anchors: anchors.iter().map(|s| s.to_string()).collect(),
            embeds: embeds.iter().map(|s| s.to_string()).collect(),
            entry_point: false,
        }
    }

    #[test]
    fn html_has_exact_size_and_links() {
        let spec = html_spec(2048, &["/a.html", "/b.html"], &["/i.gif"]);
        let bytes = materialize(&spec);
        assert_eq!(bytes.len(), 2048);
        let html = String::from_utf8(bytes).unwrap();
        let links = extract_links(&html);
        assert_eq!(links.len(), 3);
        assert_eq!(links[0].url, "/a.html");
        assert_eq!(links[0].kind, LinkKind::Hyperlink);
        assert_eq!(links[2].url, "/i.gif");
        assert_eq!(links[2].kind, LinkKind::Embedded);
    }

    #[test]
    fn tiny_size_still_emits_all_markup() {
        let spec = html_spec(10, &["/a.html"], &[]);
        let bytes = materialize(&spec);
        assert!(bytes.len() > 10, "markup can't fit; emitted whole anyway");
        let html = String::from_utf8(bytes).unwrap();
        assert_eq!(extract_links(&html).len(), 1);
    }

    #[test]
    fn image_bytes_exact_and_deterministic() {
        let spec = DocSpec {
            name: "/x.gif".into(),
            size: 1536,
            kind: PageKind::Image,
            anchors: vec![],
            embeds: vec![],
            entry_point: false,
        };
        let a = materialize(&spec);
        let b = materialize(&spec);
        assert_eq!(a.len(), 1536);
        assert_eq!(a, b);
        assert!(a.starts_with(b"GIF89a"));
        // Different names produce different bytes.
        let mut spec2 = spec.clone();
        spec2.name = "/y.gif".into();
        assert_ne!(materialize(&spec2), a);
    }

    #[test]
    fn materialization_is_idempotent() {
        let spec = html_spec(4096, &["/a.html"], &["/i.gif", "/j.gif"]);
        assert_eq!(materialize(&spec), materialize(&spec));
    }

    #[test]
    fn paper_datasets_materialize_to_spec_size() {
        // Every HTML document in the small datasets must fit its markup in
        // its budgeted size, so dataset aggregate bytes stay calibrated.
        for name in ["mapug", "sblog", "lod"] {
            let d = Dataset::by_name(name, 5).unwrap();
            for doc in &d.docs {
                if doc.kind == PageKind::Html {
                    let bytes = materialize(doc);
                    assert_eq!(
                        bytes.len() as u64,
                        doc.size,
                        "{name}:{} markup overflow",
                        doc.name
                    );
                }
            }
        }
    }

    #[test]
    fn materialized_links_match_spec() {
        let d = Dataset::lod(5);
        let table = d.get("/tables/table0.html").unwrap();
        let html = String::from_utf8(materialize(table)).unwrap();
        let links = extract_links(&html);
        let urls: Vec<&str> = links.iter().map(|l| l.url.as_str()).collect();
        let expected: Vec<&str> = table.all_links().collect();
        assert_eq!(urls, expected);
    }
}
