//! Back-fill harness for individual Figure 7 cells:
//! `fig7_fill <dataset> <servers> [duration_ms] [accel]` prints one
//! CSV-compatible row (see `dcws-bench --bin fig7` for the full sweep).
fn main() {
    let args: Vec<String> = std::env::args().collect();
    let ds = args.get(1).map(|s| s.as_str()).unwrap_or("sequoia");
    let n: usize = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(8);
    let dur: u64 = args.get(3).and_then(|s| s.parse().ok()).unwrap_or(420_000);
    let accel: u64 = args.get(4).and_then(|s| s.parse().ok()).unwrap_or(8);
    let mut cfg = dcws_sim::SimConfig::paper(
        dcws_workloads::Dataset::by_name(ds, 1).expect("known dataset"),
        n,
        400,
    )
    .accelerate(accel);
    cfg.duration_ms = dur;
    cfg.sample_interval_ms = 10_000;
    let r = dcws_sim::run_sim(cfg);
    println!(
        "  {ds:<8} servers={n:<2} cps={:>7.0} bps={:>11.0} migr={:<4} imb={:.2}",
        r.steady_cps(),
        r.steady_bps(),
        r.migrations,
        r.final_load_imbalance()
    );
}
