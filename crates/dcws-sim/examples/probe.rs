fn main() {
    let args: Vec<String> = std::env::args().collect();
    let n_servers: usize = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(4);
    let n_clients: usize = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(16);
    let dur: u64 = args.get(3).and_then(|s| s.parse().ok()).unwrap_or(60_000);
    let accel: u64 = args.get(4).and_then(|s| s.parse().ok()).unwrap_or(10);
    let ds = args.get(5).map(|s| s.as_str()).unwrap_or("lod");
    let mut cfg = dcws_sim::SimConfig::paper(
        dcws_workloads::Dataset::by_name(ds, 1).unwrap(),
        n_servers,
        n_clients,
    )
    .accelerate(accel);
    cfg.duration_ms = dur;
    cfg.sample_interval_ms = 10_000;
    let t0 = std::time::Instant::now();
    let r = dcws_sim::run_sim(cfg);
    println!("wall={:?} migrations={} remig/revoc={} regens={} redirects={} completed={} drops={} failures={} sessions={}",
        t0.elapsed(), r.migrations, r.revocations, r.regenerations, r.totals.redirects, r.totals.completed, r.totals.drops, r.totals.failures, r.totals.sessions);
    for s in &r.samples {
        println!(
            "t={}ms cps={:.0} bps={:.0} drops/s={:.0} redir/s={:.0} per_server={:?}",
            s.t_ms,
            s.cps,
            s.bps,
            s.drops_per_sec,
            s.redirects_per_sec,
            s.per_server_cps
                .iter()
                .map(|c| *c as u64)
                .collect::<Vec<_>>()
        );
    }
}
