//! Determinism and invariant regression tests for the seeded scenario
//! suite.
//!
//! Every scenario kind runs at its [`Scenario::quick`] size on **both**
//! switch models, twice per configuration. The two runs must agree on
//! the [`SimResult::digest`] summary *and* produce byte-identical
//! event-trace CSVs — the strongest reproducibility statement the
//! simulator makes, and the one EXPERIMENTS.md leans on when it cites
//! `(seed, scenario)` pairs as provenance.
//!
//! The same runs feed the PR-4 invariant audit at quiesce: no document
//! lost (every published name still resolves by following the `301`
//! chain from home), a single owner per document, and — after the fault
//! scenarios' recovery tails — a reconverged GLT with no live server
//! still marked stale. Scenario-specific bounds ride along: the flash
//! crowd must keep its p99 finite, and rolling restarts must end with
//! every survivor agreeing the group is healthy.

use dcws_sim::{NetModel, Scenario, ScenarioKind, SimResult};

const SEED: u64 = 0xD15C_0DE5;

/// Runs `kind` twice at quick size under `net`, checks digest equality
/// and byte-identical event traces, and returns the first run for
/// invariant checks.
fn run_twice_and_check(kind: ScenarioKind, net: NetModel) -> (SimResult, dcws_sim::OwnershipAudit) {
    let scenario = Scenario::quick(kind, SEED).with_net_model(net);
    let (r1, audit) = scenario.run();
    let (r2, _) = scenario.run();
    assert_eq!(
        r1.digest(),
        r2.digest(),
        "{}/{net:?}: same (seed, scenario) must reproduce the summary",
        kind.name()
    );

    let tag = format!("dcws-scn-{}-{net:?}-{}", kind.name(), std::process::id());
    let p1 = std::env::temp_dir().join(format!("{tag}-a.csv"));
    let p2 = std::env::temp_dir().join(format!("{tag}-b.csv"));
    r1.save_event_trace(&p1).unwrap();
    r2.save_event_trace(&p2).unwrap();
    let (b1, b2) = (std::fs::read(&p1).unwrap(), std::fs::read(&p2).unwrap());
    let _ = std::fs::remove_file(&p1);
    let _ = std::fs::remove_file(&p2);
    assert!(
        !b1.is_empty(),
        "{}/{net:?}: event trace should not be empty",
        kind.name()
    );
    assert_eq!(
        b1,
        b2,
        "{}/{net:?}: event-trace CSVs must be byte-identical",
        kind.name()
    );

    (r1, audit)
}

fn assert_clean(kind: ScenarioKind, net: NetModel, audit: &dcws_sim::OwnershipAudit) {
    assert!(
        audit.clean(),
        "{}/{net:?}: quiesce audit dirty — lost={:?} multi_owner={:?} glt_stale={:?}",
        kind.name(),
        audit.lost,
        audit.multi_owner,
        audit.glt_stale,
    );
    assert!(audit.docs > 0, "audit must have walked the published site");
}

#[test]
fn flash_crowd_constant_bw_deterministic_and_clean() {
    let (r, audit) = run_twice_and_check(ScenarioKind::FlashCrowd, NetModel::ConstantBandwidth);
    assert_clean(
        ScenarioKind::FlashCrowd,
        NetModel::ConstantBandwidth,
        &audit,
    );
    // The surge must complete sessions, and its tail latency must stay
    // finite: clients are not permanently wedged behind the hot object.
    assert!(r.totals.sessions > 0 && r.latency.count() > 0);
    let p99_us = r.latency.percentile_us(0.99);
    assert!(
        (1..30_000_000).contains(&p99_us),
        "flash-crowd p99 {p99_us} µs should be finite and under 30 s"
    );
}

#[test]
fn flash_crowd_shared_bw_deterministic_and_clean() {
    let (r, audit) = run_twice_and_check(ScenarioKind::FlashCrowd, NetModel::SharedBandwidth);
    assert_clean(ScenarioKind::FlashCrowd, NetModel::SharedBandwidth, &audit);
    let p99_us = r.latency.percentile_us(0.99);
    assert!(
        (1..30_000_000).contains(&p99_us),
        "flash-crowd p99 {p99_us} µs should be finite and under 30 s"
    );
    // Fair-share accounting must actually have seen concurrent flows.
    assert!(r.switch_peak_flows >= 2, "shared switch never saw overlap");
}

#[test]
fn diurnal_wave_constant_bw_deterministic_and_clean() {
    let (r, audit) = run_twice_and_check(ScenarioKind::DiurnalWave, NetModel::ConstantBandwidth);
    assert_clean(
        ScenarioKind::DiurnalWave,
        NetModel::ConstantBandwidth,
        &audit,
    );
    assert!(r.totals.sessions > 0);
}

#[test]
fn diurnal_wave_shared_bw_deterministic_and_clean() {
    let (r, audit) = run_twice_and_check(ScenarioKind::DiurnalWave, NetModel::SharedBandwidth);
    assert_clean(ScenarioKind::DiurnalWave, NetModel::SharedBandwidth, &audit);
    assert!(r.totals.sessions > 0);
}

#[test]
fn rolling_restart_constant_bw_deterministic_and_reconverged() {
    let (r, audit) = run_twice_and_check(ScenarioKind::RollingRestart, NetModel::ConstantBandwidth);
    assert_clean(
        ScenarioKind::RollingRestart,
        NetModel::ConstantBandwidth,
        &audit,
    );
    // The explicit reconvergence claim, separate from clean(): after the
    // recovery tail no live server may still consider a peer stale.
    assert!(
        audit.glt_stale.is_empty(),
        "GLT must reconverge after the last restart: stale on {:?}",
        audit.glt_stale
    );
    assert!(r.totals.sessions > 0);
}

#[test]
fn rolling_restart_shared_bw_deterministic_and_reconverged() {
    let (r, audit) = run_twice_and_check(ScenarioKind::RollingRestart, NetModel::SharedBandwidth);
    assert_clean(
        ScenarioKind::RollingRestart,
        NetModel::SharedBandwidth,
        &audit,
    );
    assert!(
        audit.glt_stale.is_empty(),
        "GLT must reconverge after the last restart: stale on {:?}",
        audit.glt_stale
    );
    assert!(r.totals.sessions > 0);
}

#[test]
fn coop_failures_constant_bw_deterministic_and_clean() {
    let (r, audit) = run_twice_and_check(ScenarioKind::CoopFailures, NetModel::ConstantBandwidth);
    assert_clean(
        ScenarioKind::CoopFailures,
        NetModel::ConstantBandwidth,
        &audit,
    );
    // Home survives the correlated co-op kill, so no document may be
    // lost even while half the group is down.
    assert!(audit.lost.is_empty() && r.totals.sessions > 0);
}

#[test]
fn coop_failures_shared_bw_deterministic_and_clean() {
    let (r, audit) = run_twice_and_check(ScenarioKind::CoopFailures, NetModel::SharedBandwidth);
    assert_clean(
        ScenarioKind::CoopFailures,
        NetModel::SharedBandwidth,
        &audit,
    );
    assert!(audit.lost.is_empty() && r.totals.sessions > 0);
}

#[test]
fn different_seeds_diverge() {
    // Sanity check that the determinism assertions above are not
    // vacuous: a different master seed must change the run.
    let a = Scenario::quick(ScenarioKind::FlashCrowd, SEED);
    let b = Scenario::quick(ScenarioKind::FlashCrowd, SEED ^ 1);
    let (ra, _) = a.run();
    let (rb, _) = b.run();
    assert_ne!(ra.digest(), rb.digest(), "seed must steer the run");
}
