//! Property-based tests on the simulator: metric sanity and determinism
//! across randomized configurations.

use dcws_sim::{run_sim, SimConfig};
use dcws_workloads::{uniform_site, SyntheticConfig};
use proptest::prelude::*;

fn random_cfg() -> impl Strategy<Value = SimConfig> {
    (
        1usize..4,    // servers
        1usize..8,    // clients
        5u64..25,     // duration (s)
        2usize..30,   // pages
        0usize..6,    // images
        1usize..5,    // fanout
        0usize..3,    // embeds per page
        any::<u64>(), // seed
    )
        .prop_map(|(srv, cli, dur, pages, images, fanout, embeds, seed)| {
            let site = uniform_site(
                &SyntheticConfig {
                    pages,
                    images,
                    fanout,
                    embeds,
                    page_bytes: 2048,
                    image_bytes: 1024,
                },
                seed,
            );
            let mut cfg = SimConfig::paper(site, srv, cli).accelerate(10);
            cfg.duration_ms = dur * 1000;
            cfg.sample_interval_ms = 5_000;
            cfg.seed = seed;
            cfg
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn sim_invariants_hold(cfg in random_cfg()) {
        let dur = cfg.duration_ms;
        let r = run_sim(cfg);
        // Time series is well-formed: strictly increasing sample times
        // within the run, non-negative rates, monotonic migrations.
        let mut last_t = 0;
        let mut last_migr = 0;
        for s in &r.samples {
            prop_assert!(s.t_ms > last_t || last_t == 0);
            prop_assert!(s.t_ms <= dur);
            prop_assert!(s.cps >= 0.0 && s.bps >= 0.0);
            prop_assert!(s.migrations_total >= last_migr);
            last_t = s.t_ms;
            last_migr = s.migrations_total;
        }
        // Bytes only flow with completions.
        if r.totals.completed == 0 {
            prop_assert_eq!(r.totals.bytes, 0);
        }
        // Sessions can't outnumber completions plus failures plus one
        // in-flight per client (every session serves at least one doc or
        // dies trying).
        prop_assert!(r.totals.sessions <= r.totals.completed + r.totals.drops + r.totals.failures + 16);
        // Revocations never exceed migrations.
        prop_assert!(r.revocations <= r.migrations);
    }

    #[test]
    fn sim_is_deterministic(cfg in random_cfg()) {
        let a = run_sim(cfg.clone());
        let b = run_sim(cfg);
        prop_assert_eq!(a.totals, b.totals);
        prop_assert_eq!(a.migrations, b.migrations);
        prop_assert_eq!(a.samples.len(), b.samples.len());
    }
}
