//! Arms the event-loop allocation micro-asserts.
//!
//! The run loop in `dcws_sim::cluster` carries a debug-build assertion
//! that popping the event queue performs **zero** heap allocations (see
//! `dcws_sim::alloc`). That assertion is vacuous unless some harness
//! installs [`CountingAlloc`] as the process's global allocator — which
//! is exactly what this integration test binary does. Running any
//! simulation here therefore turns every queue pop into a checked claim;
//! a regression that reintroduces per-event allocation (a `format!` in
//! the routing path, a map rebuilt per pop) fails this test immediately.
//!
//! Deliberately a **single** `#[test]`: the allocation counter is
//! process-global, and parallel tests would interleave their counts.

use dcws_sim::alloc::CountingAlloc;
use dcws_sim::{NetModel, Scenario, ScenarioKind};

#[global_allocator]
static PROBE: CountingAlloc = CountingAlloc;

#[test]
fn event_loop_pops_never_allocate() {
    // Prove the probe is armed before trusting any assertion downstream.
    let before = dcws_sim::alloc::allocations();
    let v: Vec<u64> = vec![1, 2, 3];
    drop(v);
    assert!(
        dcws_sim::alloc::allocations() > before,
        "CountingAlloc is not installed; the micro-asserts are vacuous"
    );

    // A fault scenario covers the hottest pop paths: request routing,
    // service completion, delivery, restarts — under both switch models.
    // With the probe armed, the run loop's debug_assert verifies every
    // single pop; reaching the end without a panic is the test.
    for net in [NetModel::ConstantBandwidth, NetModel::SharedBandwidth] {
        let scenario = Scenario::quick(ScenarioKind::RollingRestart, 7).with_net_model(net);
        let (result, _) = scenario.run();
        assert!(
            result.totals.sessions > 0 && result.events > 0,
            "{net:?}: probe run must have exercised the event loop"
        );
    }
}
