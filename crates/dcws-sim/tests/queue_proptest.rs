//! Property tests for the event queue's ordering contract.
//!
//! The scale-out run loop trusts two properties of
//! [`dcws_sim::event::EventQueue`] unconditionally: virtual time never
//! runs backwards across pops, and events scheduled for the same instant
//! pop in insertion (FIFO) order — the tie-break that makes whole-run
//! determinism possible in the first place. These tests state both as
//! properties over arbitrary push sequences, including pushes
//! interleaved with pops the way the simulator actually drives the heap.

use dcws_sim::event::{Event, EventQueue, SimTime};
use proptest::collection::vec as pvec;
use proptest::prelude::*;

/// Drains the queue, returning `(time, client)` per pop. Every event the
/// tests push is a `ClientWake`, with the client id as insertion index.
fn drain(q: &mut EventQueue) -> Vec<(SimTime, usize)> {
    let mut out = Vec::new();
    while let Some((at, ev)) = q.pop() {
        let Event::ClientWake { client } = ev else {
            panic!("queue returned an event that was never pushed");
        };
        out.push((at, client));
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn pops_never_decrease_in_time(times in pvec(0u64..10_000, 1..256)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.push(t, Event::ClientWake { client: i });
        }
        let popped = drain(&mut q);
        prop_assert_eq!(popped.len(), times.len(), "no event may be dropped");
        for w in popped.windows(2) {
            prop_assert!(w[0].0 <= w[1].0, "time went backwards: {:?}", w);
        }
    }

    #[test]
    fn equal_timestamps_pop_fifo(times in pvec(0u64..6, 1..256)) {
        // A tiny timestamp domain forces heavy collision: nearly every
        // pop exercises the (at, seq) tie-break rather than `at` alone.
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.push(t, Event::ClientWake { client: i });
        }
        let popped = drain(&mut q);
        prop_assert_eq!(popped.len(), times.len());
        for w in popped.windows(2) {
            let ((t0, c0), (t1, c1)) = (w[0], w[1]);
            prop_assert!(
                t0 < t1 || (t0 == t1 && c0 < c1),
                "tie at t={} broke FIFO: client {} before {}",
                t1, c0, c1
            );
        }
    }

    #[test]
    fn interleaved_push_pop_stays_ordered(
        ops in pvec((0u64..1_000, any::<bool>()), 1..256)
    ) {
        // Simulator discipline: nothing is ever scheduled in the past,
        // i.e. pushes happen at `now + delta`. Under that contract pops
        // must be globally non-decreasing even with pushes interleaved.
        let mut q = EventQueue::new();
        let mut now: SimTime = 0;
        let (mut pushed, mut popped_n) = (0usize, 0usize);
        for &(delta, do_pop) in &ops {
            q.push(now + delta, Event::ClientWake { client: pushed });
            pushed += 1;
            if do_pop {
                let (at, _) = q.pop().expect("queue cannot be empty here");
                prop_assert!(at >= now, "pop at {} before now {}", at, now);
                now = at;
                popped_n += 1;
            }
        }
        for (at, _) in drain(&mut q) {
            prop_assert!(at >= now);
            now = at;
            popped_n += 1;
        }
        prop_assert_eq!(popped_n, pushed, "every push must pop exactly once");
        prop_assert!(q.is_empty());
        prop_assert_eq!(q.len(), 0);
    }

    #[test]
    fn presized_queue_behaves_like_grown_one(times in pvec(0u64..100, 1..128)) {
        // with_capacity is a performance hint only: pop order must match
        // a queue that grew organically from empty.
        let mut a = EventQueue::new();
        let mut b = EventQueue::with_capacity(times.len() * 2);
        for (i, &t) in times.iter().enumerate() {
            a.push(t, Event::ClientWake { client: i });
            b.push(t, Event::ClientWake { client: i });
        }
        prop_assert_eq!(drain(&mut a), drain(&mut b));
    }
}
