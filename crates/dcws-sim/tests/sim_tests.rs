//! Behavioural tests of the simulated cluster.

use dcws_baselines::Strategy;
use dcws_sim::{run_sim, SimCluster, SimConfig};
use dcws_workloads::{uniform_site, Dataset, SyntheticConfig};

fn small_lod(n_servers: usize, n_clients: usize, duration_ms: u64) -> SimConfig {
    let mut cfg = SimConfig::paper(Dataset::lod(1), n_servers, n_clients);
    cfg.duration_ms = duration_ms;
    cfg.sample_interval_ms = 5_000;
    cfg
}

/// As [`small_lod`] but with 10x-accelerated control-plane timers, so the
/// cluster reaches migration steady state within the test budget (the
/// paper's Table-1 timers take ~30 simulated minutes to warm up, which is
/// exactly the Figure 8 experiment and too slow for unit tests).
fn warm_lod(n_servers: usize, n_clients: usize, duration_ms: u64) -> SimConfig {
    small_lod(n_servers, n_clients, duration_ms).accelerate(10)
}

#[test]
fn clients_complete_requests() {
    let r = run_sim(small_lod(2, 4, 20_000));
    assert!(r.totals.completed > 100, "completed={}", r.totals.completed);
    assert!(r.totals.bytes > 10_000);
    assert!(r.totals.sessions > 5);
    assert_eq!(r.samples.len(), 4);
}

#[test]
fn migrations_happen_under_load() {
    let r = run_sim(warm_lod(4, 16, 60_000));
    assert!(r.migrations > 0, "no migrations in a loaded 4-server run");
    // Migration implies regeneration of dirtied sources sooner or later.
    assert!(r.regenerations > 0);
    // And clients follow some redirects for stale links.
    assert!(r.totals.redirects > 0);
}

#[test]
fn single_server_never_migrates() {
    let r = run_sim(small_lod(1, 8, 20_000));
    assert_eq!(r.migrations, 0);
    assert!(r.totals.completed > 100);
    assert_eq!(r.totals.redirects, 0);
}

#[test]
fn more_servers_more_throughput() {
    // Enough clients to saturate one server but not four. The 4-server
    // run needs most of the dataset migrated before it balances (240
    // images at ~1 migration/s accelerated), hence the longer warm-up.
    let r1 = run_sim(warm_lod(1, 48, 60_000));
    let r4 = run_sim(small_lod(4, 48, 360_000).accelerate(20));
    assert!(
        r4.steady_cps() > r1.steady_cps() * 1.5,
        "1 server: {:.0} cps, 4 servers: {:.0} cps",
        r1.steady_cps(),
        r4.steady_cps()
    );
}

#[test]
fn saturated_cluster_drops_gracefully() {
    // Overwhelm a single server: drops must appear, and throughput must
    // plateau near the server's capacity rather than collapsing.
    let r = run_sim(small_lod(1, 120, 60_000));
    assert!(r.totals.drops > 0, "expected 503 drops under overload");
    let cps = r.steady_cps();
    assert!(
        (300.0..1200.0).contains(&cps),
        "steady CPS should sit near single-server capacity: {cps}"
    );
}

#[test]
fn deterministic_given_seed() {
    let a = run_sim(small_lod(2, 8, 20_000));
    let b = run_sim(small_lod(2, 8, 20_000));
    assert_eq!(a.totals, b.totals);
    assert_eq!(a.migrations, b.migrations);
    let mut cfg = small_lod(2, 8, 20_000);
    cfg.seed = 1234;
    let c = run_sim(cfg);
    assert_ne!(a.totals, c.totals, "different seed, different run");
}

#[test]
fn round_robin_dns_baseline_runs() {
    let mut cfg = small_lod(4, 16, 20_000);
    cfg.strategy = Strategy::RoundRobinDns { ttl_ms: 30_000 };
    let r = run_sim(cfg);
    assert!(r.totals.completed > 100);
    assert_eq!(r.migrations, 0, "baseline must not migrate");
    assert_eq!(r.totals.redirects, 0);
}

#[test]
fn central_router_baseline_bottlenecks() {
    // Router at 1 ms/conn caps the cluster near 1000 CPS no matter how
    // many backends exist.
    let mut cfg = small_lod(8, 120, 40_000);
    cfg.strategy = Strategy::CentralRouter {
        forward_cpu_us: 1_000,
    };
    let router = run_sim(cfg);
    let mut cfg = small_lod(8, 120, 40_000);
    cfg.strategy = Strategy::RoundRobinDns { ttl_ms: 10_000 };
    let dns = run_sim(cfg);
    assert!(
        dns.steady_cps() > router.steady_cps() * 1.3,
        "router {:.0} cps should trail replicated DNS {:.0} cps",
        router.steady_cps(),
        dns.steady_cps()
    );
}

#[test]
fn coop_crash_recalls_documents_and_service_continues() {
    let cfg = warm_lod(3, 16, 60_000);
    // Crash server 2 at t=30 s.
    let r = SimCluster::with_crashes(cfg, vec![(30_000, 2)]).run();
    assert!(r.revocations > 0, "crash should trigger recalls");
    // Clients keep completing after the crash (last-quarter samples).
    let tail = &r.samples[r.samples.len() - 2..];
    assert!(tail.iter().all(|s| s.cps > 0.0), "service died after crash");
}

#[test]
fn fault_plan_blackout_maps_to_crash() {
    // The same seeded FaultPlan vocabulary the real transport uses
    // drives the simulator: a blackout of s2 becomes a fail-stop crash
    // at its from_ms, triggering the §4.5 recall path.
    let plan = dcws_net::FaultPlan::new(1999)
        .with_blackout("s2:80", 30_000, 60_000)
        .with_blackout("nonexistent:80", 1_000, 2_000);
    let r = SimCluster::with_fault_plan(warm_lod(3, 16, 60_000), &plan).run();
    assert!(r.revocations > 0, "blackout crash should trigger recalls");
    let tail = &r.samples[r.samples.len() - 2..];
    assert!(tail.iter().all(|s| s.cps > 0.0), "service died after crash");
}

#[test]
fn load_spreads_across_servers() {
    let r = run_sim(warm_lod(4, 64, 120_000));
    let last = r.samples.last().unwrap();
    let busy = last.per_server_cps.iter().filter(|&&c| c > 1.0).count();
    assert!(
        busy >= 3,
        "expected ≥3 busy servers, got {:?}",
        last.per_server_cps
    );
    assert!(
        r.final_load_imbalance() < 1.5,
        "imbalance {}",
        r.final_load_imbalance()
    );
}

#[test]
fn synthetic_hotspot_concentrates_load() {
    // One shared image: whichever co-op hosts it saturates first.
    let site = uniform_site(
        &SyntheticConfig {
            pages: 60,
            images: 1,
            embeds: 3,
            fanout: 4,
            ..Default::default()
        },
        7,
    );
    let mut cfg = SimConfig::paper(site, 4, 48).accelerate(10);
    cfg.duration_ms = 60_000;
    cfg.sample_interval_ms = 5_000;
    let r = run_sim(cfg);
    assert!(r.totals.completed > 100);
    // The hot image forces skew: imbalance should be visible.
    assert!(
        r.final_load_imbalance() > 0.1,
        "imbalance {}",
        r.final_load_imbalance()
    );
}

#[test]
fn sequoia_is_bps_heavy_and_lod_is_cps_heavy() {
    let mut lod = SimConfig::paper(Dataset::lod(1), 2, 12);
    lod.duration_ms = 30_000;
    lod.sample_interval_ms = 5_000;
    let lod_r = run_sim(lod);
    let mut seq = SimConfig::paper(Dataset::sequoia(1), 2, 12);
    seq.duration_ms = 30_000;
    seq.sample_interval_ms = 5_000;
    let seq_r = run_sim(seq);
    assert!(
        lod_r.steady_cps() > seq_r.steady_cps() * 3.0,
        "LOD cps {:.0} vs Sequoia cps {:.0}",
        lod_r.steady_cps(),
        seq_r.steady_cps()
    );
    assert!(
        seq_r.steady_bps() > lod_r.steady_bps() * 3.0,
        "Sequoia bps {:.0} vs LOD bps {:.0}",
        seq_r.steady_bps(),
        lod_r.steady_bps()
    );
}

#[test]
fn think_time_lowers_offered_load() {
    let quick = run_sim(small_lod(2, 8, 20_000));
    let mut cfg = small_lod(2, 8, 20_000);
    cfg.client.think_time_ms = 2_000; // ~2 s of reading per step
    let thoughtful = run_sim(cfg);
    assert!(
        (thoughtful.steady_cps() as f64) < quick.steady_cps() * 0.3,
        "think time should slash per-client request rate: {} vs {}",
        thoughtful.steady_cps(),
        quick.steady_cps()
    );
    assert!(thoughtful.totals.completed > 0);
}

#[test]
fn trace_record_then_replay() {
    // Record an access log from an Algorithm-2 run...
    let mut rec = small_lod(2, 6, 20_000);
    rec.record_trace = true;
    let recorded = run_sim(rec);
    let trace = recorded.trace.expect("trace recorded");
    assert!(trace.len() > 100, "trace has {} events", trace.len());
    assert!(trace.span_ms() <= 20_000);

    // ...then replay it open-loop against a fresh cluster: every recorded
    // request is answered (200 directly, or via a 301 for URLs recorded
    // after migrations the fresh cluster hasn't made yet).
    let mut rep = small_lod(2, 6, 21_000);
    rep.replay = Some(trace.clone());
    let replayed = run_sim(rep);
    let answered = replayed.totals.completed + replayed.totals.drops + replayed.totals.failures;
    assert!(
        answered as f64 > 0.95 * trace.len() as f64,
        "answered {answered} of {} trace events",
        trace.len()
    );
    assert!(replayed.totals.completed > 0);
    // Replay is open-loop: no sessions are simulated.
    assert_eq!(replayed.totals.sessions, 0);
}
