//! The resource-cost model standing in for the paper's testbed hardware:
//! 200 MHz Pentium workstations, 100 Mbps switched Ethernet with 2.4 Gbps
//! aggregate, Linux 2.0.30 (§5.2).
//!
//! The experiments measure *which resource saturates first*; the model
//! therefore charges CPU per connection and per byte, serializes NIC
//! transmissions at link bandwidth, caps the switch, and charges the
//! §5.3-measured parse/reconstruct cost on every regeneration. Constants
//! are calibrated so a single simulated server peaks at roughly the
//! per-server rates the paper reports (≈ 900–950 CPS on LOD-sized
//! documents, ≈ 12.5 MB/s NIC-bound on Sequoia-sized ones).

/// Resource costs for the simulated cluster.
#[derive(Debug, Clone, PartialEq)]
pub struct CostModel {
    /// Server CPU per connection: TCP setup/teardown + HTTP parsing, µs.
    pub conn_cpu_us: u64,
    /// Server CPU per response body byte, nanoseconds.
    pub per_byte_cpu_ns: u64,
    /// Server CPU per document regeneration: ≈ 3 ms parse + 20 ms
    /// reconstruct (§5.3), µs.
    pub regen_cpu_us: u64,
    /// Front-end CPU per graceful 503 drop ("the most load intensive
    /// method" of dropping), µs.
    pub drop_cpu_us: u64,
    /// NIC bandwidth, bytes per µs (12.5 ≈ 100 Mbps).
    pub nic_bytes_per_us: f64,
    /// Switch aggregate bandwidth, bytes per µs (300 ≈ 2.4 Gbps).
    pub switch_bytes_per_us: f64,
    /// One-way network latency, µs.
    pub latency_us: u64,
    /// Client-side CPU per request issued (the benchmark workstation's
    /// share of parse + thread overhead; calibrated so one Algorithm-2
    /// instance sustains ≈ 40–90 CPS as in §5.2), µs.
    pub client_overhead_us: u64,
}

impl CostModel {
    /// Constants calibrated to the paper's testbed (see module docs).
    pub fn paper_testbed() -> Self {
        CostModel {
            conn_cpu_us: 1_000,
            per_byte_cpu_ns: 25,
            regen_cpu_us: 23_000,
            drop_cpu_us: 200,
            nic_bytes_per_us: 12.5,
            switch_bytes_per_us: 300.0,
            latency_us: 200,
            client_overhead_us: 20_000,
        }
    }

    /// CPU service time for a response of `body_bytes`, µs.
    pub fn service_us(&self, body_bytes: usize) -> u64 {
        self.conn_cpu_us + (body_bytes as u64 * self.per_byte_cpu_ns) / 1_000
    }

    /// NIC transmission time for `bytes`, µs.
    pub fn tx_us(&self, bytes: usize) -> u64 {
        (bytes as f64 / self.nic_bytes_per_us).ceil() as u64
    }

    /// Switch transmission time for `bytes`, µs.
    pub fn switch_us(&self, bytes: usize) -> u64 {
        (bytes as f64 / self.switch_bytes_per_us).ceil() as u64
    }

    /// A server's theoretical CPS ceiling for `body_bytes`-sized responses.
    pub fn max_cps(&self, body_bytes: usize) -> f64 {
        let cpu = 1_000_000.0 / self.service_us(body_bytes) as f64;
        let nic = self.nic_bytes_per_us * 1_000_000.0 / body_bytes.max(1) as f64;
        cpu.min(nic)
    }
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel::paper_testbed()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lod_regime_is_cpu_bound() {
        let c = CostModel::paper_testbed();
        // ~2.2 KB average LOD transfer: ≈ 950 CPS, CPU-bound.
        let cps = c.max_cps(2_200);
        assert!((850.0..1000.0).contains(&cps), "cps={cps}");
    }

    #[test]
    fn sequoia_regime_is_nic_bound() {
        let c = CostModel::paper_testbed();
        // 1.9 MB images: NIC 12.5 MB/s → ~6.6 transfers/s.
        let cps = c.max_cps(1_900_000);
        assert!((5.0..8.0).contains(&cps), "cps={cps}");
        // And the byte rate pins at the NIC.
        let bps = cps * 1_900_000.0;
        assert!((11e6..13e6).contains(&bps), "bps={bps}");
    }

    #[test]
    fn service_time_components() {
        let c = CostModel::paper_testbed();
        assert_eq!(c.service_us(0), 1_000);
        assert_eq!(c.service_us(40_000), 2_000); // 40 KB at 25 ns/B = 1 ms
    }

    #[test]
    fn tx_time_matches_bandwidth() {
        let c = CostModel::paper_testbed();
        assert_eq!(c.tx_us(12_500), 1_000); // 12.5 KB in 1 ms at 100 Mbps
        assert_eq!(c.tx_us(0), 0);
    }

    #[test]
    fn switch_much_faster_than_nic() {
        let c = CostModel::paper_testbed();
        assert!(c.switch_us(1_000_000) < c.tx_us(1_000_000) / 10);
    }
}
