//! Access-trace recording and open-loop replay.
//!
//! The paper's evaluation drives synthetic Algorithm-2 walks and lists
//! *"we have not used actual access logs for the experiments"* as future
//! work (§6). This module closes that gap: any simulation run can record
//! the requests its clients issued as a [`Trace`] (a minimal access log),
//! and a later run can **replay** a trace open-loop — each request fires
//! at its recorded time regardless of how the cluster responds, the
//! standard methodology for log-driven evaluation. Replay still follows
//! `301`s (a browser would), so DCWS migration keeps working underneath.

use std::io::{BufRead, Write};
use std::path::Path;

/// One access-log record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Request time, ms from run start.
    pub t_ms: u64,
    /// Issuing client id (kept for per-client analyses).
    pub client: usize,
    /// Absolute URL requested.
    pub url: String,
}

/// An ordered access log.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Trace {
    /// Events sorted by time.
    pub events: Vec<TraceEvent>,
}

impl Trace {
    /// Build from events (sorts by time, stable).
    pub fn new(mut events: Vec<TraceEvent>) -> Self {
        events.sort_by_key(|e| e.t_ms);
        Trace { events }
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the log is empty.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Total span in ms (time of the last event).
    pub fn span_ms(&self) -> u64 {
        self.events.last().map(|e| e.t_ms).unwrap_or(0)
    }

    /// Serialize as `t_ms,client,url` lines (a minimal combined-log).
    pub fn save(&self, path: impl AsRef<Path>) -> std::io::Result<()> {
        let mut f = std::io::BufWriter::new(std::fs::File::create(path)?);
        for e in &self.events {
            writeln!(f, "{},{},{}", e.t_ms, e.client, e.url)?;
        }
        f.flush()
    }

    /// Parse the [`Trace::save`] format; malformed lines are skipped.
    pub fn load(path: impl AsRef<Path>) -> std::io::Result<Trace> {
        let f = std::io::BufReader::new(std::fs::File::open(path)?);
        let mut events = Vec::new();
        for line in f.lines() {
            let line = line?;
            let mut parts = line.splitn(3, ',');
            let (Some(t), Some(c), Some(u)) = (parts.next(), parts.next(), parts.next()) else {
                continue;
            };
            let (Ok(t_ms), Ok(client)) = (t.parse(), c.parse()) else {
                continue;
            };
            if u.is_empty() {
                continue;
            }
            events.push(TraceEvent {
                t_ms,
                client,
                url: u.to_string(),
            });
        }
        Ok(Trace::new(events))
    }

    /// Scale all timestamps by `factor` (compress or stretch the log).
    pub fn scale_time(&self, factor: f64) -> Trace {
        Trace::new(
            self.events
                .iter()
                .map(|e| TraceEvent {
                    t_ms: (e.t_ms as f64 * factor) as u64,
                    client: e.client,
                    url: e.url.clone(),
                })
                .collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Trace {
        Trace::new(vec![
            TraceEvent {
                t_ms: 30,
                client: 1,
                url: "http://s0/b.html".into(),
            },
            TraceEvent {
                t_ms: 10,
                client: 0,
                url: "http://s0/a.html".into(),
            },
            TraceEvent {
                t_ms: 20,
                client: 0,
                url: "http://s0/i.gif".into(),
            },
        ])
    }

    #[test]
    fn new_sorts_by_time() {
        let t = sample();
        assert_eq!(t.events[0].t_ms, 10);
        assert_eq!(t.events[2].t_ms, 30);
        assert_eq!(t.span_ms(), 30);
        assert_eq!(t.len(), 3);
    }

    #[test]
    fn save_load_round_trip() {
        let t = sample();
        let path = std::env::temp_dir().join(format!("dcws-trace-{}.log", std::process::id()));
        t.save(&path).unwrap();
        let loaded = Trace::load(&path).unwrap();
        assert_eq!(loaded, t);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn load_skips_malformed_lines() {
        let path = std::env::temp_dir().join(format!("dcws-trace-bad-{}.log", std::process::id()));
        std::fs::write(
            &path,
            "10,0,http://s0/a.html\ngarbage\n,x,\n20,1,http://s0/b.html\n",
        )
        .unwrap();
        let t = Trace::load(&path).unwrap();
        assert_eq!(t.len(), 2);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn scale_time_compresses() {
        let t = sample().scale_time(0.5);
        assert_eq!(t.span_ms(), 15);
        assert_eq!(t.events[0].t_ms, 5);
    }
}
