//! Per-component seeded PRNG streams.
//!
//! Every random consumer in the simulator — each Algorithm-2 client, each
//! scenario's load-shape draws, each fault schedule — owns its own RNG,
//! derived from the master seed through a *named, indexed* stream:
//! `stream(master, "client", 7)` is always the same generator, no matter
//! what else the run contains. Adding a scenario (or another thousand
//! clients) therefore never perturbs an existing component's draws, which
//! is what keeps A/B comparisons honest: the only differences between two
//! runs are the ones the configuration asked for.
//!
//! The derivation hashes `(domain, index)` into the master seed with FNV-1a
//! and finishes through two rounds of splitmix64, so adjacent indices and
//! similarly-named domains land far apart in seed space.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// splitmix64 finalizer — a cheap, well-dispersed 64-bit mix.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// FNV-1a over a byte string.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h = (h ^ b as u64).wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// The derived seed for stream `(domain, index)` under `master`.
pub fn stream_seed(master: u64, domain: &str, index: u64) -> u64 {
    let d = fnv1a(domain.as_bytes());
    splitmix64(splitmix64(master ^ d).wrapping_add(index))
}

/// A deterministic RNG for component `(domain, index)` under `master`.
///
/// Streams are independent: draws from one never consume another's state.
pub fn stream(master: u64, domain: &str, index: u64) -> StdRng {
    StdRng::seed_from_u64(stream_seed(master, domain, index))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn same_name_same_stream() {
        let mut ra = stream(42, "client", 3);
        let mut rb = stream(42, "client", 3);
        let a: Vec<u64> = (0..8).map(|_| ra.gen_range(0..u64::MAX)).collect();
        let b: Vec<u64> = (0..8).map(|_| rb.gen_range(0..u64::MAX)).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn domains_and_indices_separate_streams() {
        let base = stream_seed(42, "client", 3);
        assert_ne!(base, stream_seed(42, "client", 4));
        assert_ne!(base, stream_seed(42, "scenario", 3));
        assert_ne!(base, stream_seed(43, "client", 3));
    }

    #[test]
    fn adjacent_indices_disperse() {
        // Not a statistical test — just guards against a derivation bug
        // that would map adjacent indices to adjacent (correlated) seeds.
        let s0 = stream_seed(7, "client", 0);
        let s1 = stream_seed(7, "client", 1);
        assert!(s0.abs_diff(s1) > 1 << 20);
    }
}
