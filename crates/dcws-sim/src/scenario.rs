//! Seeded scenario library: reproducible cluster stories.
//!
//! Each scenario is a pure function of `(kind, seed, scale)` — the load
//! shape, fault schedule, and every client's walk all derive from the one
//! seed through [`crate::seed`] streams, so a scenario run is replayable
//! byte for byte (the determinism suite holds that line) and a failing
//! run can be handed to someone else as three numbers.
//!
//! The four kinds map to the cluster stories the paper's design must
//! survive:
//!
//! * **Flash crowd** — a quiet SBLog site, then most of the population
//!   arrives at once and every detail page hammers the one bar-graph JPEG
//!   (§5.3's hot spot). Exercises migration under a step load.
//! * **Diurnal wave** — LOD with client arrivals ramping up over the
//!   first half and retiring over the second, the shape a day of traffic
//!   compresses into. Exercises migration *and* re-migration (T_home).
//! * **Rolling restart** — every non-home server crashes and cold-starts
//!   in sequence, as a fleet upgrade would. Exercises dead-peer
//!   detection, recall-on-death, and GLT reconvergence.
//! * **Co-op failures** — half the co-ops die at the same instant and
//!   stay down (a rack loss). Exercises correlated revocation: every
//!   migrated document must fall back to its home.

use crate::cluster::{OwnershipAudit, SimCluster};
use crate::config::{HotEntry, SimConfig};
use crate::event::SimTime;
use crate::metrics::SimResult;
use dcws_workloads::Dataset;

pub use crate::config::NetModel;

/// Which cluster story to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScenarioKind {
    /// Step arrival surge onto SBLog's hot-JPEG site.
    FlashCrowd,
    /// Arrival ramp-up then ramp-down over LOD.
    DiurnalWave,
    /// Sequential crash + cold restart of every non-home server.
    RollingRestart,
    /// Simultaneous permanent loss of half the co-op servers.
    CoopFailures,
}

impl ScenarioKind {
    /// Every scenario kind, in a fixed order (drives test matrices and
    /// the `scenarios` harness).
    pub fn all() -> [ScenarioKind; 4] {
        [
            ScenarioKind::FlashCrowd,
            ScenarioKind::DiurnalWave,
            ScenarioKind::RollingRestart,
            ScenarioKind::CoopFailures,
        ]
    }

    /// Stable snake_case name (CSV file stems, log lines).
    pub fn name(&self) -> &'static str {
        match self {
            ScenarioKind::FlashCrowd => "flash_crowd",
            ScenarioKind::DiurnalWave => "diurnal_wave",
            ScenarioKind::RollingRestart => "rolling_restart",
            ScenarioKind::CoopFailures => "coop_failures",
        }
    }
}

/// A fully specified, reproducible scenario run. Two `Scenario` values
/// with equal fields produce byte-identical results.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// The story.
    pub kind: ScenarioKind,
    /// Master seed; dataset shape, client walks, and jitter all derive
    /// from it.
    pub seed: u64,
    /// Switch fabric model.
    pub net_model: NetModel,
    /// Cluster size (server 0 is the home and is never faulted).
    pub n_servers: usize,
    /// Client population.
    pub n_clients: usize,
    /// Virtual run length, ms. Fault and load phases scale with it.
    pub duration_ms: u64,
}

impl Scenario {
    /// Paper-scale defaults: what the `scenarios` harness runs in release
    /// mode for EXPERIMENTS.md.
    pub fn full(kind: ScenarioKind, seed: u64) -> Self {
        let (n_servers, n_clients, duration_ms) = match kind {
            ScenarioKind::FlashCrowd => (4, 64, 180_000),
            ScenarioKind::DiurnalWave => (4, 64, 240_000),
            ScenarioKind::RollingRestart => (4, 32, 300_000),
            ScenarioKind::CoopFailures => (5, 48, 240_000),
        };
        Scenario {
            kind,
            seed,
            net_model: NetModel::default(),
            n_servers,
            n_clients,
            duration_ms,
        }
    }

    /// CI-scale variant: same phases, shrunk population and duration, so
    /// the determinism and invariant suites stay affordable in debug
    /// builds. Phase boundaries are fractions of `duration_ms`, so the
    /// story is the same — just shorter.
    pub fn quick(kind: ScenarioKind, seed: u64) -> Self {
        let (n_servers, n_clients, duration_ms) = match kind {
            ScenarioKind::FlashCrowd => (3, 12, 60_000),
            ScenarioKind::DiurnalWave => (3, 12, 60_000),
            ScenarioKind::RollingRestart => (3, 10, 75_000),
            ScenarioKind::CoopFailures => (4, 12, 60_000),
        };
        Scenario {
            kind,
            seed,
            net_model: NetModel::default(),
            n_servers,
            n_clients,
            duration_ms,
        }
    }

    /// Same scenario under a different switch model.
    pub fn with_net_model(mut self, m: NetModel) -> Self {
        self.net_model = m;
        self
    }

    /// When the flash crowd's surge (or this scenario's main disturbance)
    /// begins, ms.
    pub fn phase_ms(&self) -> u64 {
        match self.kind {
            ScenarioKind::FlashCrowd => self.duration_ms / 3,
            ScenarioKind::DiurnalWave => self.duration_ms / 2,
            ScenarioKind::RollingRestart => self.duration_ms / 5,
            ScenarioKind::CoopFailures => self.duration_ms / 2,
        }
    }

    /// The simulation configuration this scenario expands to.
    pub fn config(&self) -> SimConfig {
        let dataset = match self.kind {
            ScenarioKind::FlashCrowd | ScenarioKind::CoopFailures => Dataset::sblog(self.seed),
            ScenarioKind::DiurnalWave | ScenarioKind::RollingRestart => Dataset::lod(self.seed),
        };
        // 10x-accelerated control plane: migration steady state (and,
        // for the fault scenarios, dead-peer detection at ~3 pinger
        // periods ≈ 6 s) arrives well inside the run.
        let mut cfg = SimConfig::paper(dataset, self.n_servers, self.n_clients).accelerate(10);
        cfg.duration_ms = self.duration_ms;
        cfg.seed = self.seed;
        cfg.net_model = self.net_model;
        match self.kind {
            ScenarioKind::FlashCrowd => {
                // A quarter of the population browses from t=0; the rest
                // all arrive at the surge and enter through the front page
                // (whose detail pages all embed the hot JPEG).
                let surge = self.phase_ms();
                let early = (self.n_clients / 4).max(1);
                cfg.client_starts = Some(
                    (0..self.n_clients)
                        .map(|i| {
                            if i < early {
                                i as u64 * 1_000 / early as u64
                            } else {
                                surge
                            }
                        })
                        .collect(),
                );
                cfg.hot_entry = Some(HotEntry {
                    from_ms: surge,
                    entry: 0,
                    prob: 1.0,
                });
            }
            ScenarioKind::DiurnalWave => {
                // Arrivals spread over the first half; retirements over
                // the second, first-in first-out.
                let n = self.n_clients as u64;
                let half = self.duration_ms / 2;
                cfg.client_starts = Some((0..n).map(|i| i * half / n).collect());
                cfg.client_stops = Some((0..n).map(|i| half + (i + 1) * half / n).collect());
            }
            ScenarioKind::RollingRestart | ScenarioKind::CoopFailures => {}
        }
        cfg
    }

    /// Scheduled crashes `(t_ms, server)`. Server 0 (the home, holding the
    /// originals) is never faulted.
    pub fn crashes(&self) -> Vec<(u64, usize)> {
        match self.kind {
            ScenarioKind::RollingRestart => (1..self.n_servers)
                .map(|s| {
                    (
                        self.restart_spacing_ms() * (s as u64 - 1) + self.phase_ms(),
                        s,
                    )
                })
                .collect(),
            ScenarioKind::CoopFailures => {
                // The top half of the co-ops die together at mid-run.
                let coops = self.n_servers - 1;
                let dead = coops.div_ceil(2);
                let t = self.phase_ms();
                (self.n_servers - dead..self.n_servers)
                    .map(|s| (t, s))
                    .collect()
            }
            _ => Vec::new(),
        }
    }

    /// Scheduled cold restarts `(t_ms, server)` pairing the rolling
    /// restart's crashes; each server stays down for half a spacing —
    /// comfortably past the ~3-pinger-period dead-peer detection, so the
    /// group really does revoke and re-admit it.
    pub fn restarts(&self) -> Vec<(u64, usize)> {
        match self.kind {
            ScenarioKind::RollingRestart => self
                .crashes()
                .into_iter()
                .map(|(t, s)| (t + self.restart_spacing_ms() / 2, s))
                .collect(),
            _ => Vec::new(),
        }
    }

    /// Gap between successive rolling-restart crashes, ms.
    fn restart_spacing_ms(&self) -> u64 {
        let victims = (self.n_servers - 1).max(1) as u64;
        self.duration_ms * 3 / 5 / victims
    }

    /// Build the cluster (faults scheduled) without running it.
    pub fn build(&self) -> SimCluster {
        SimCluster::with_crashes(self.config(), self.crashes())
            .with_restart_schedule(self.restarts())
    }

    /// Run to completion, with the quiesce-time ownership audit.
    pub fn run(&self) -> (SimResult, OwnershipAudit) {
        self.build().run_audited()
    }
}

/// Smallest delay after the last scheduled restart before the run ends,
/// µs — diagnostic guard used by tests to confirm a scenario leaves room
/// for reconvergence.
pub fn tail_after_last_restart_us(s: &Scenario) -> SimTime {
    let last = s
        .restarts()
        .into_iter()
        .chain(s.crashes())
        .map(|(t, _)| t)
        .max()
        .unwrap_or(0);
    (s.duration_ms.saturating_sub(last)) * 1_000
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedules_are_pure_functions_of_the_scenario() {
        for kind in ScenarioKind::all() {
            let a = Scenario::quick(kind, 9);
            let b = Scenario::quick(kind, 9);
            assert_eq!(a.crashes(), b.crashes(), "{}", kind.name());
            assert_eq!(a.restarts(), b.restarts(), "{}", kind.name());
        }
    }

    #[test]
    fn home_is_never_faulted() {
        for kind in ScenarioKind::all() {
            for scale in [Scenario::quick(kind, 1), Scenario::full(kind, 1)] {
                assert!(
                    scale.crashes().iter().all(|&(_, s)| s != 0),
                    "{} crashes the home",
                    kind.name()
                );
            }
        }
    }

    #[test]
    fn rolling_restart_leaves_reconvergence_tail() {
        for s in [
            Scenario::quick(ScenarioKind::RollingRestart, 1),
            Scenario::full(ScenarioKind::RollingRestart, 1),
        ] {
            let cfg = s.config();
            // Down-time exceeds detection (3 pinger periods)…
            let detection_us = 3 * cfg.server_config.pinger_interval_ms * 1_000;
            let down_us = s.restart_spacing_ms() / 2 * 1_000;
            assert!(
                down_us > detection_us,
                "down {down_us} vs detect {detection_us}"
            );
            // …and the run outlives the last restart by several pinger
            // periods, so GLTs can reconverge before the audit.
            assert!(tail_after_last_restart_us(&s) > 2 * detection_us);
        }
    }

    #[test]
    fn coop_failures_kill_half_the_coops_at_once() {
        let s = Scenario::full(ScenarioKind::CoopFailures, 3);
        let crashes = s.crashes();
        assert_eq!(crashes.len(), (s.n_servers - 1).div_ceil(2));
        assert!(crashes.iter().all(|&(t, _)| t == s.phase_ms()));
    }

    #[test]
    fn flash_crowd_shapes_arrivals() {
        let s = Scenario::quick(ScenarioKind::FlashCrowd, 5);
        let cfg = s.config();
        let starts = cfg.client_starts.expect("flash crowd shapes arrivals");
        assert_eq!(starts.len(), s.n_clients);
        let surge = s.phase_ms();
        assert!(starts.iter().filter(|&&t| t == surge).count() >= s.n_clients / 2);
        assert!(starts.iter().any(|&t| t < surge));
        assert_eq!(cfg.hot_entry.as_ref().map(|h| h.from_ms), Some(surge));
    }
}
