//! Discrete-event cluster simulator for DCWS — the stand-in for the
//! paper's 64-workstation testbed (§5.2).
//!
//! The simulator runs **real** [`dcws_core::ServerEngine`]s (the same code
//! the TCP transport hosts): documents really migrate, hyperlinks are
//! really rewritten, piggybacked gossip really flows. What's modeled is
//! hardware: per-server CPU and NIC, the switch's aggregate bandwidth,
//! socket-queue backlog with graceful 503 drops, and client workstation
//! overhead — all parameterized by [`CostModel`], calibrated to the 1998
//! testbed.
//!
//! Clients implement Algorithm 2 (Figure 5) faithfully: random-length
//! walks from well-known entry points, a per-session client-side cache,
//! four parallel image-fetch helpers, 301 following, and exponential
//! back-off on 503 drops. They parse the *actual served bytes* with
//! `dcws-html` to pick the next link — so stale links, rewritten links,
//! and redirect chains behave exactly as they would against real servers.
//!
//! Baselines (round-robin DNS, central TCP router, single server) plug in
//! via [`dcws_baselines::Strategy`].
//!
//! # Example
//!
//! ```
//! use dcws_sim::{run_sim, SimConfig};
//! use dcws_workloads::Dataset;
//!
//! let mut cfg = SimConfig::paper(Dataset::lod(1), 2, 8);
//! cfg.duration_ms = 30_000;  // short demo run
//! let result = run_sim(cfg);
//! assert!(result.totals.completed > 0);
//! ```

#![warn(missing_docs)]

pub mod alloc;
pub mod cluster;
pub mod config;
pub mod cost;
pub mod event;
pub mod metrics;
pub mod scenario;
pub mod seed;
pub mod trace;

pub use cluster::{run_sim, OwnershipAudit, SimCluster};
pub use config::{ClientModel, HotEntry, NetModel, SimConfig};
pub use cost::CostModel;
pub use metrics::{Counters, LatencyHist, Sample, SimResult};
pub use scenario::{Scenario, ScenarioKind};
pub use trace::{Trace, TraceEvent};
