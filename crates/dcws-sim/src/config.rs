//! Simulation configuration.

use crate::cost::CostModel;
use crate::trace::Trace;
use dcws_baselines::Strategy;
use dcws_core::ServerConfig;
use dcws_workloads::Dataset;

/// How the cluster's switch fabric is modeled.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum NetModel {
    /// The §5.2 testbed model: every transfer serializes through one
    /// aggregate pipe at the switch's full rate. Cheap and adequate while
    /// total offered load sits well under the aggregate capacity.
    #[default]
    ConstantBandwidth,
    /// Fair-share contention: concurrent flows divide the aggregate
    /// capacity, so a transfer admitted while `k-1` others are in flight
    /// runs at `capacity / k`. The share is snapshotted at admission
    /// (a deterministic O(1) approximation of processor sharing — flows
    /// admitted later do not retroactively slow earlier ones), which
    /// models the switch as a finite shared resource rather than an
    /// infinite pipe.
    SharedBandwidth,
}

/// Flash-crowd style entry-point skew: from `from_ms` on, each new
/// session picks entry point `entry` with probability `prob` instead of
/// drawing uniformly (the remaining `1-prob` stays uniform).
#[derive(Debug, Clone, PartialEq)]
pub struct HotEntry {
    /// Virtual time (ms) at which the skew switches on.
    pub from_ms: u64,
    /// Index into the dataset's entry points.
    pub entry: usize,
    /// Probability a new session targets the hot entry; must be in `[0,1]`.
    pub prob: f64,
}

/// Client-benchmark parameters (Algorithm 2, Figure 5).
#[derive(Debug, Clone, PartialEq)]
pub struct ClientModel {
    /// Maximum random walk length per session: `no_steps ← random(1..max)`.
    pub max_steps: u32,
    /// Parallel image-fetch helper threads per client (the prototype
    /// benchmark used 4).
    pub helpers: usize,
    /// Whether the per-session client cache is enabled (the paper's
    /// benchmark builds one in; disabling it is an ablation).
    pub cache_enabled: bool,
    /// Maximum 301 redirects followed per fetch before giving up.
    pub max_redirects: u32,
    /// Cap on exponential back-off exponent (sleep = 2^k seconds).
    pub max_backoff_pow: u32,
    /// Mean user think time between walk steps, ms (drawn uniformly from
    /// `0..=2*mean` per step). The paper's benchmark used zero and lists
    /// think time as future work (§6); non-zero values model humans
    /// reading pages and lower each client's offered load accordingly.
    pub think_time_ms: u64,
}

impl Default for ClientModel {
    fn default() -> Self {
        ClientModel {
            max_steps: 25,
            helpers: 4,
            cache_enabled: true,
            max_redirects: 4,
            max_backoff_pow: 6,
            think_time_ms: 0,
        }
    }
}

/// Full configuration of one simulation run.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Number of cooperating servers. Under [`Strategy::Dcws`] the dataset
    /// lives on server 0 (the home) and the rest start empty, exactly the
    /// paper's cold-start deployment; replicated strategies give every
    /// server a full copy.
    pub n_servers: usize,
    /// Number of Algorithm-2 client instances.
    pub n_clients: usize,
    /// The site being served.
    pub dataset: Dataset,
    /// Engine configuration (Table 1 defaults unless overridden).
    pub server_config: ServerConfig,
    /// Hardware cost model.
    pub cost: CostModel,
    /// Client-benchmark parameters.
    pub client: ClientModel,
    /// Request-distribution architecture.
    pub strategy: Strategy,
    /// Simulated run length, ms.
    pub duration_ms: u64,
    /// Metric sampling interval, ms (the paper samples every 10 s).
    pub sample_interval_ms: u64,
    /// How often each server's control plane runs (drives engine timers).
    pub tick_interval_ms: u64,
    /// Master RNG seed; every component stream derives from it (see
    /// [`crate::seed`]).
    pub seed: u64,
    /// Switch fabric model (see [`NetModel`]).
    pub net_model: NetModel,
    /// Per-client first-wake times, ms. `None` keeps the default behavior
    /// of staggering session starts over the first second. Scenarios use
    /// this for load shapes: flash-crowd surges, diurnal ramps.
    /// When `Some`, the length must equal `n_clients`.
    pub client_starts: Option<Vec<u64>>,
    /// Per-client retirement times, ms: a client whose next session would
    /// start at or after its stop time goes dormant instead (diurnal
    /// ramp-down). When `Some`, the length must equal `n_clients`.
    pub client_stops: Option<Vec<u64>>,
    /// Entry-point skew for flash-crowd scenarios.
    pub hot_entry: Option<HotEntry>,
    /// Record every client request as an access log, returned in
    /// [`crate::SimResult::trace`].
    pub record_trace: bool,
    /// Replay this access log open-loop instead of running Algorithm-2
    /// clients (log-driven evaluation; see [`crate::trace`]).
    pub replay: Option<Trace>,
}

impl SimConfig {
    /// Speed up the Table-1 control-plane timers by `factor` so a run
    /// reaches migration steady state in a fraction of the paper's
    /// 30-minute warm-up. Load dynamics at steady state are unchanged —
    /// only the approach to it is compressed. Used by the figure harnesses
    /// (and documented in EXPERIMENTS.md); Figure 8 keeps paper timers
    /// because the warm-up *is* the experiment.
    pub fn accelerate(mut self, factor: u64) -> Self {
        assert!(factor >= 1);
        let c = &mut self.server_config;
        c.stat_interval_ms = (c.stat_interval_ms / factor).max(500);
        c.pinger_interval_ms = (c.pinger_interval_ms / factor).max(1_000);
        c.validation_interval_ms = (c.validation_interval_ms / factor).max(2_000);
        c.remigration_interval_ms = (c.remigration_interval_ms / factor).max(5_000);
        c.coop_migration_interval_ms = (c.coop_migration_interval_ms / factor).max(1_000);
        c.selection_threshold = (c.selection_threshold / factor.min(2)).max(3);
        self.tick_interval_ms = self.tick_interval_ms.min(c.stat_interval_ms / 2).max(250);
        self
    }

    /// Quiet the control-plane timers for pure data-plane scale runs: the
    /// pinger, validation, and remigration intervals are pushed past the
    /// run's end so a 1,000-server group does not spend the whole run in
    /// O(N²) ping storms. `scalepress` uses this; scenario runs keep the
    /// (accelerated) timers because the control plane *is* the scenario.
    pub fn quiet_control_plane(mut self) -> Self {
        let beyond = self.duration_ms.saturating_mul(10).max(3_600_000);
        let c = &mut self.server_config;
        c.pinger_interval_ms = beyond;
        c.validation_interval_ms = beyond;
        c.remigration_interval_ms = beyond;
        c.coop_migration_interval_ms = beyond;
        self
    }

    /// A configuration mirroring the paper's setup for `dataset` with the
    /// given cluster and client sizes.
    pub fn paper(dataset: Dataset, n_servers: usize, n_clients: usize) -> Self {
        // The paper's testbed held every dataset in memory and never
        // evicted, so the figure harnesses run with an unbounded document
        // cache; the `cachepress` benchmark sweeps explicit budgets.
        let mut server_config = ServerConfig::paper_defaults();
        server_config.cache_budget_bytes = u64::MAX;
        SimConfig {
            n_servers,
            n_clients,
            dataset,
            server_config,
            cost: CostModel::paper_testbed(),
            client: ClientModel::default(),
            strategy: Strategy::Dcws,
            duration_ms: 120_000,
            sample_interval_ms: 10_000,
            tick_interval_ms: 1_000,
            seed: 42,
            net_model: NetModel::ConstantBandwidth,
            client_starts: None,
            client_stops: None,
            hot_entry: None,
            record_trace: false,
            replay: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_config_defaults() {
        let c = SimConfig::paper(Dataset::lod(1), 4, 32);
        assert_eq!(c.n_servers, 4);
        assert_eq!(c.n_clients, 32);
        assert_eq!(c.sample_interval_ms, 10_000);
        assert_eq!(c.client.helpers, 4);
        assert_eq!(c.client.max_steps, 25);
        assert_eq!(c.strategy, Strategy::Dcws);
        assert_eq!(c.net_model, NetModel::ConstantBandwidth);
        assert!(c.client_starts.is_none());
        assert!(c.hot_entry.is_none());
    }

    #[test]
    fn quiet_control_plane_outlasts_run() {
        let mut c = SimConfig::paper(Dataset::lod(1), 2, 4);
        c.duration_ms = 30_000;
        let c = c.quiet_control_plane();
        assert!(c.server_config.pinger_interval_ms > c.duration_ms);
        assert!(c.server_config.validation_interval_ms > c.duration_ms);
        assert!(c.server_config.coop_migration_interval_ms > c.duration_ms);
    }
}
