//! Allocation accounting for the event core.
//!
//! The scale-out contract (docs/SIMULATION.md) is that the steady-state
//! event loop's *infrastructure* — queue pop, server/client slab access,
//! request routing — performs no heap allocation per event; only protocol
//! payloads (request/response bodies, rewritten HTML) may allocate. The
//! run loop carries a debug-build micro-assert around every queue pop to
//! hold that line.
//!
//! Counting every allocation requires a global allocator hook, which a
//! library must not install for its hosts. So the lib only exposes
//! [`CountingAlloc`] plus a counter; the probe harness
//! (`tests/alloc_probe.rs`) installs it as its `#[global_allocator]`,
//! which **arms** the micro-asserts: in any build without the probe
//! allocator the counter never moves and the asserts are vacuous, and in
//! release builds they compile out entirely.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

static ALLOCS: AtomicU64 = AtomicU64::new(0);

/// Number of allocator calls (alloc + realloc) observed so far. Always 0
/// unless [`CountingAlloc`] is the process's global allocator.
pub fn allocations() -> u64 {
    ALLOCS.load(Ordering::Relaxed)
}

/// A counting wrapper around the system allocator. Install in a test or
/// bench harness as `#[global_allocator]` to arm the event-loop
/// allocation micro-asserts.
pub struct CountingAlloc;

// SAFETY: defers every operation to `System`; only adds a relaxed counter.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }
}
