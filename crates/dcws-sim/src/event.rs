//! The discrete-event core: virtual time and the event queue.

use dcws_http::{Request, Response};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Virtual time in microseconds.
pub type SimTime = u64;

/// Why a server-originated request was sent, so the response can be routed
/// back into the right engine callback.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Purpose {
    /// Lazy pull of a migrated document from its home (§4.2).
    Pull {
        /// The home server pulled from.
        home: dcws_graph::ServerId,
        /// Original document path on the home server.
        path: String,
    },
    /// Co-op revalidation of a migrated copy (§4.5).
    Validate {
        /// The home server being validated against.
        home: dcws_graph::ServerId,
        /// Original document path on the home server.
        path: String,
    },
    /// Artificial pinger transfer (§4.5).
    Ping {
        /// The peer being pinged.
        peer: dcws_graph::ServerId,
    },
    /// Eager-migration push (ablation); response is ignored.
    Push,
}

/// Who is waiting for a response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Origin {
    /// A benchmark client; `token` matches the response to the right
    /// outstanding fetch (main document or one of the image helpers).
    Client {
        /// Client index.
        id: usize,
        /// Fetch token issued by the client.
        token: u64,
    },
    /// Another server; `peer` is the request's destination (for ping
    /// bookkeeping) and `purpose` selects the engine callback.
    Server {
        /// Issuing server index.
        id: usize,
        /// Why the request was sent.
        purpose: Purpose,
    },
}

/// What landed at a recipient: a real response, or a connection-level
/// failure (crashed peer / refused connection).
#[derive(Debug, Clone)]
pub enum Delivery {
    /// An HTTP response (possibly a 503 drop).
    Response(Response),
    /// The connection failed outright — no HTTP exchange happened.
    Failed,
}

/// One scheduled occurrence.
#[derive(Debug)]
pub enum Event {
    /// A request reaches server `server`'s front end.
    RequestArrive {
        /// Destination server index (router pseudo-server allowed).
        server: usize,
        /// The request.
        req: Request,
        /// Who to answer.
        origin: Origin,
    },
    /// Server `server` finished the CPU service of a request.
    ServiceDone {
        /// The server whose CPU completed.
        server: usize,
    },
    /// A response (or failure) is delivered to whoever asked.
    Deliver {
        /// The requester.
        origin: Origin,
        /// What arrived. For `Origin::Server` pings/validations the target
        /// server id rides along in `from`.
        delivery: Delivery,
        /// Index of the server that produced it (or `usize::MAX` for
        /// synthetic failures).
        from: usize,
    },
    /// Periodic control-plane tick for one server.
    ServerTick {
        /// The server to tick.
        server: usize,
    },
    /// A client becomes runnable (session start, post-overhead, or
    /// back-off expiry).
    ClientWake {
        /// The client.
        client: usize,
    },
    /// Metrics sampling point.
    Sample,
    /// Fire one recorded request during open-loop trace replay.
    ReplayFire {
        /// Index into the replayed trace's events.
        idx: usize,
    },
}

struct Scheduled {
    at: SimTime,
    seq: u64,
    event: Event,
}

impl PartialEq for Scheduled {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for Scheduled {}
impl PartialOrd for Scheduled {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Scheduled {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert for earliest-first.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// Earliest-first event queue with deterministic FIFO tie-breaking.
#[derive(Default)]
pub struct EventQueue {
    heap: BinaryHeap<Scheduled>,
    seq: u64,
}

impl EventQueue {
    /// An empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedule `event` at absolute time `at`.
    pub fn push(&mut self, at: SimTime, event: Event) {
        self.seq += 1;
        self.heap.push(Scheduled {
            at,
            seq: self.seq,
            event,
        });
    }

    /// Pop the earliest event, if any.
    pub fn pop(&mut self) -> Option<(SimTime, Event)> {
        self.heap.pop().map(|s| (s.at, s.event))
    }

    /// Pending event count.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(30, Event::Sample);
        q.push(10, Event::ClientWake { client: 1 });
        q.push(20, Event::ServerTick { server: 0 });
        let times: Vec<SimTime> = std::iter::from_fn(|| q.pop().map(|(t, _)| t)).collect();
        assert_eq!(times, vec![10, 20, 30]);
    }

    #[test]
    fn ties_break_fifo() {
        let mut q = EventQueue::new();
        q.push(5, Event::ClientWake { client: 1 });
        q.push(5, Event::ClientWake { client: 2 });
        q.push(5, Event::ClientWake { client: 3 });
        let ids: Vec<usize> = std::iter::from_fn(|| {
            q.pop().map(|(_, e)| match e {
                Event::ClientWake { client } => client,
                _ => unreachable!(),
            })
        })
        .collect();
        assert_eq!(ids, vec![1, 2, 3]);
    }

    #[test]
    fn len_tracks() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        q.push(1, Event::Sample);
        assert_eq!(q.len(), 1);
        q.pop();
        assert!(q.is_empty());
    }
}
