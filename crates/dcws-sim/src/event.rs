//! The discrete-event core: virtual time and the event queue.
//!
//! The queue is a hand-rolled binary min-heap over a flat `Vec`, keyed by
//! `(virtual time, insertion sequence)`. The explicit sequence number
//! gives **FIFO tie-breaking** on equal timestamps — the property every
//! determinism guarantee in this crate rests on — and the flat layout
//! makes `pop` allocation-free: popping swaps the root with the tail slot
//! and sifts down in place, never touching the allocator. `push` only
//! allocates when the backing `Vec` grows, which a steady-state run
//! amortizes to zero (see `tests/alloc_probe.rs`, which arms the
//! debug-build micro-assert in the run loop with a counting allocator).

use dcws_http::{Request, Response};

/// Virtual time in microseconds.
pub type SimTime = u64;

/// Why a server-originated request was sent, so the response can be routed
/// back into the right engine callback.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Purpose {
    /// Lazy pull of a migrated document from its home (§4.2).
    Pull {
        /// The home server pulled from.
        home: dcws_graph::ServerId,
        /// Original document path on the home server.
        path: String,
    },
    /// Co-op revalidation of a migrated copy (§4.5).
    Validate {
        /// The home server being validated against.
        home: dcws_graph::ServerId,
        /// Original document path on the home server.
        path: String,
    },
    /// Artificial pinger transfer (§4.5).
    Ping {
        /// The peer being pinged.
        peer: dcws_graph::ServerId,
    },
    /// Eager-migration push (ablation); response is ignored.
    Push,
}

/// Who is waiting for a response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Origin {
    /// A benchmark client; `token` matches the response to the right
    /// outstanding fetch (main document or one of the image helpers).
    Client {
        /// Client index.
        id: usize,
        /// Fetch token issued by the client.
        token: u64,
    },
    /// Another server; `peer` is the request's destination (for ping
    /// bookkeeping) and `purpose` selects the engine callback.
    Server {
        /// Issuing server index.
        id: usize,
        /// Why the request was sent.
        purpose: Purpose,
    },
}

/// What landed at a recipient: a real response, or a connection-level
/// failure (crashed peer / refused connection).
#[derive(Debug, Clone)]
pub enum Delivery {
    /// An HTTP response (possibly a 503 drop).
    Response(Response),
    /// The connection failed outright — no HTTP exchange happened.
    Failed,
}

/// One scheduled occurrence.
#[derive(Debug)]
pub enum Event {
    /// A request reaches server `server`'s front end.
    RequestArrive {
        /// Destination server index (router pseudo-server allowed).
        server: usize,
        /// The request.
        req: Request,
        /// Who to answer.
        origin: Origin,
    },
    /// Server `server` finished the CPU service of a request.
    ServiceDone {
        /// The server whose CPU completed.
        server: usize,
    },
    /// A response (or failure) is delivered to whoever asked.
    Deliver {
        /// The requester.
        origin: Origin,
        /// What arrived. For `Origin::Server` pings/validations the target
        /// server id rides along in `from`.
        delivery: Delivery,
        /// Index of the server that produced it (or `usize::MAX` for
        /// synthetic failures).
        from: usize,
    },
    /// Periodic control-plane tick for one server.
    ServerTick {
        /// The server to tick.
        server: usize,
    },
    /// A client becomes runnable (session start, post-overhead, or
    /// back-off expiry).
    ClientWake {
        /// The client.
        client: usize,
    },
    /// Metrics sampling point.
    Sample,
    /// Fire one recorded request during open-loop trace replay.
    ReplayFire {
        /// Index into the replayed trace's events.
        idx: usize,
    },
    /// One shared-bandwidth switch flow finished; its capacity share is
    /// returned to the pool (see [`crate::NetModel::SharedBandwidth`]).
    SwitchRelease,
    /// A crashed server finishes rebooting and rejoins the group cold
    /// (rolling-restart scenarios).
    ServerRestart {
        /// The server coming back.
        server: usize,
    },
}

struct Scheduled {
    at: SimTime,
    seq: u64,
    event: Event,
}

impl Scheduled {
    /// Heap ordering key: earliest time first, then insertion order.
    #[inline]
    fn key(&self) -> (SimTime, u64) {
        (self.at, self.seq)
    }
}

/// Earliest-first event queue with deterministic FIFO tie-breaking.
///
/// A flat-`Vec` binary min-heap: `pop` is allocation-free, `push`
/// allocates only on capacity growth. Use [`EventQueue::with_capacity`]
/// (or [`EventQueue::reserve`]) to pre-size for the expected event
/// population so the steady-state loop never grows it.
#[derive(Default)]
pub struct EventQueue {
    heap: Vec<Scheduled>,
    seq: u64,
}

impl EventQueue {
    /// An empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty queue with room for `cap` events before any growth.
    pub fn with_capacity(cap: usize) -> Self {
        EventQueue {
            heap: Vec::with_capacity(cap),
            seq: 0,
        }
    }

    /// Ensure room for at least `additional` more events.
    pub fn reserve(&mut self, additional: usize) {
        self.heap.reserve(additional);
    }

    /// Current backing capacity (diagnostics for the allocation probe).
    pub fn capacity(&self) -> usize {
        self.heap.capacity()
    }

    /// Schedule `event` at absolute time `at`.
    pub fn push(&mut self, at: SimTime, event: Event) {
        self.seq += 1;
        self.heap.push(Scheduled {
            at,
            seq: self.seq,
            event,
        });
        self.sift_up(self.heap.len() - 1);
    }

    /// Pop the earliest event, if any. Never allocates.
    pub fn pop(&mut self) -> Option<(SimTime, Event)> {
        if self.heap.is_empty() {
            return None;
        }
        let last = self.heap.len() - 1;
        self.heap.swap(0, last);
        let s = self.heap.pop().expect("non-empty heap pops");
        if !self.heap.is_empty() {
            self.sift_down(0);
        }
        Some((s.at, s.event))
    }

    /// Pending event count.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    fn sift_up(&mut self, mut i: usize) {
        while i > 0 {
            let parent = (i - 1) / 2;
            if self.heap[i].key() < self.heap[parent].key() {
                self.heap.swap(i, parent);
                i = parent;
            } else {
                break;
            }
        }
    }

    fn sift_down(&mut self, mut i: usize) {
        let n = self.heap.len();
        loop {
            let l = 2 * i + 1;
            let r = l + 1;
            let mut smallest = i;
            if l < n && self.heap[l].key() < self.heap[smallest].key() {
                smallest = l;
            }
            if r < n && self.heap[r].key() < self.heap[smallest].key() {
                smallest = r;
            }
            if smallest == i {
                break;
            }
            self.heap.swap(i, smallest);
            i = smallest;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(30, Event::Sample);
        q.push(10, Event::ClientWake { client: 1 });
        q.push(20, Event::ServerTick { server: 0 });
        let times: Vec<SimTime> = std::iter::from_fn(|| q.pop().map(|(t, _)| t)).collect();
        assert_eq!(times, vec![10, 20, 30]);
    }

    #[test]
    fn ties_break_fifo() {
        let mut q = EventQueue::new();
        q.push(5, Event::ClientWake { client: 1 });
        q.push(5, Event::ClientWake { client: 2 });
        q.push(5, Event::ClientWake { client: 3 });
        let ids: Vec<usize> = std::iter::from_fn(|| {
            q.pop().map(|(_, e)| match e {
                Event::ClientWake { client } => client,
                _ => unreachable!(),
            })
        })
        .collect();
        assert_eq!(ids, vec![1, 2, 3]);
    }

    #[test]
    fn interleaved_push_pop_stays_ordered() {
        let mut q = EventQueue::new();
        q.push(50, Event::Sample);
        q.push(10, Event::Sample);
        assert_eq!(q.pop().unwrap().0, 10);
        q.push(5, Event::Sample); // earlier than the remaining 50
        q.push(50, Event::Sample); // ties with the older 50: FIFO
        assert_eq!(q.pop().unwrap().0, 5);
        assert_eq!(q.pop().unwrap().0, 50);
        assert_eq!(q.pop().unwrap().0, 50);
        assert!(q.pop().is_none());
    }

    #[test]
    fn len_tracks() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        q.push(1, Event::Sample);
        assert_eq!(q.len(), 1);
        q.pop();
        assert!(q.is_empty());
    }

    #[test]
    fn with_capacity_presizes() {
        let q = EventQueue::with_capacity(1024);
        assert!(q.capacity() >= 1024);
        assert!(q.is_empty());
    }
}
