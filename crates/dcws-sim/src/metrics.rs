//! Metric collection and reduction — the CPS/BPS measures of §5.3 —
//! plus the merged engine event trace for causal analysis.

use dcws_cache::CacheStats;
use dcws_core::EventRecord;
use std::io::Write;
use std::path::Path;

/// Raw cluster counters, monotonic.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Counters {
    /// Successful (200) client-side completions.
    pub completed: u64,
    /// Body bytes delivered to clients in 200 responses.
    pub bytes: u64,
    /// 503 drops observed by clients.
    pub drops: u64,
    /// 301 redirects followed by clients.
    pub redirects: u64,
    /// Connection failures (crashed server) observed by clients.
    pub failures: u64,
    /// Sessions completed.
    pub sessions: u64,
}

/// Log₂-bucketed client-latency histogram (µs buckets).
///
/// Fixed-size and allocation-free, so the hot completion path can record
/// into it at 10⁶-session scale, and structurally comparable, so two runs
/// of the same seed must produce identical histograms (the determinism
/// suite compares them). Bucket `k` holds latencies in `[2^k, 2^{k+1})` µs;
/// the last bucket absorbs everything ≥ 2^31 µs (~36 min — beyond any
/// simulated fetch).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct LatencyHist {
    buckets: [u64; 32],
    count: u64,
}

impl LatencyHist {
    /// Record one latency in microseconds.
    pub fn record_us(&mut self, us: u64) {
        let idx = (63 - us.max(1).leading_zeros() as usize).min(31);
        self.buckets[idx] += 1;
        self.count += 1;
    }

    /// Number of recorded latencies.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// The `q`-quantile (`0 < q <= 1`) as a bucket upper bound, µs.
    /// Returns 0 when nothing was recorded.
    pub fn percentile_us(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (k, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= target {
                return (1u64 << (k + 1)) - 1;
            }
        }
        (1u64 << 32) - 1
    }

    /// Median latency, ms (bucket upper bound).
    pub fn p50_ms(&self) -> f64 {
        self.percentile_us(0.50) as f64 / 1_000.0
    }

    /// 99th-percentile latency, ms (bucket upper bound).
    pub fn p99_ms(&self) -> f64 {
        self.percentile_us(0.99) as f64 / 1_000.0
    }
}

/// One sampling point (the paper samples every 10 s).
#[derive(Debug, Clone)]
pub struct Sample {
    /// Sample time, ms.
    pub t_ms: u64,
    /// Connections per second over the interval (successful transfers).
    pub cps: f64,
    /// Bytes per second over the interval.
    pub bps: f64,
    /// Drops per second over the interval.
    pub drops_per_sec: f64,
    /// Redirects per second over the interval.
    pub redirects_per_sec: f64,
    /// Cumulative migrations across all servers at sample time.
    pub migrations_total: u64,
    /// Per-server CPS over the interval (engine-served, home + co-op).
    pub per_server_cps: Vec<f64>,
}

/// Result of one simulation run.
#[derive(Debug, Clone)]
pub struct SimResult {
    /// Time series, one entry per sample interval.
    pub samples: Vec<Sample>,
    /// Final cumulative counters.
    pub totals: Counters,
    /// Total regenerations across servers (overhead accounting, §5.3).
    pub regenerations: u64,
    /// Total migrations across servers.
    pub migrations: u64,
    /// Total revocations across servers.
    pub revocations: u64,
    /// Document-cache statistics (regen + co-op caches) merged across
    /// every server, for the budget-vs-hit-ratio experiments.
    pub cache: CacheStats,
    /// Mean client-observed fetch latency over completed (200) fetches,
    /// ms — redirect hops and lazy-pull waits included.
    pub mean_response_ms: f64,
    /// Full latency distribution behind [`SimResult::mean_response_ms`]
    /// (same population: completed fetches, end to end).
    pub latency: LatencyHist,
    /// Number of discrete events the run processed — the denominator of
    /// the scale headline (events/sec = `events` / wall-clock).
    pub events: u64,
    /// Peak number of concurrent switch flows observed (always 0 under
    /// [`crate::NetModel::ConstantBandwidth`], which serializes).
    pub switch_peak_flows: u64,
    /// Run length, ms.
    pub duration_ms: u64,
    /// The access log recorded during the run, when
    /// [`crate::SimConfig::record_trace`] was set.
    pub trace: Option<crate::trace::Trace>,
    /// Every [`EngineEvent`](dcws_core::EngineEvent) emitted by every
    /// server during the run, tagged with the server index and merged in
    /// causal order (engine time, then server, then per-engine sequence).
    /// Lets a single dump answer "which migration caused that CPS dip" —
    /// the cross-server causality the per-figure CSVs cannot show.
    pub engine_events: Vec<(usize, EventRecord)>,
}

impl SimResult {
    /// Highest CPS sample (the paper's "peak performance").
    pub fn peak_cps(&self) -> f64 {
        self.samples.iter().map(|s| s.cps).fold(0.0, f64::max)
    }

    /// Highest BPS sample.
    pub fn peak_bps(&self) -> f64 {
        self.samples.iter().map(|s| s.bps).fold(0.0, f64::max)
    }

    /// Mean CPS over the last half of the run (steady state after the
    /// cold-start warm-up).
    pub fn steady_cps(&self) -> f64 {
        self.mean_tail(|s| s.cps)
    }

    /// Mean BPS over the last half of the run.
    pub fn steady_bps(&self) -> f64 {
        self.mean_tail(|s| s.bps)
    }

    /// Mean drops/s over the last half of the run.
    pub fn steady_drop_rate(&self) -> f64 {
        self.mean_tail(|s| s.drops_per_sec)
    }

    fn mean_tail(&self, f: impl Fn(&Sample) -> f64) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        let tail = &self.samples[self.samples.len() / 2..];
        tail.iter().map(f).sum::<f64>() / tail.len() as f64
    }

    /// Write the merged engine event trace as CSV, one line per event:
    /// `t_ms,server,seq,kind,detail`. Event details are comma-free by
    /// construction (see `dcws_core::events`), so the format needs no
    /// quoting and loads into any spreadsheet or plotting tool next to
    /// the per-figure CSVs.
    pub fn save_event_trace(&self, path: impl AsRef<Path>) -> std::io::Result<()> {
        let mut f = std::io::BufWriter::new(std::fs::File::create(path)?);
        writeln!(f, "t_ms,server,seq,kind,detail")?;
        for (server, r) in &self.engine_events {
            writeln!(
                f,
                "{},{},{},{},{}",
                r.t_ms,
                server,
                r.seq,
                r.event.kind(),
                r.event.detail()
            )?;
        }
        f.flush()
    }

    /// A compact, integer-only digest of the run for determinism checks:
    /// two runs of the same `(seed, scenario, net model)` must produce
    /// byte-identical digests. Floats are deliberately excluded so the
    /// digest is stable under formatting differences; the event-trace CSV
    /// comparison covers the fine-grained ordering.
    pub fn digest(&self) -> String {
        format!(
            "completed={} bytes={} drops={} redirects={} failures={} sessions={} \
             migrations={} revocations={} regenerations={} events={} samples={} \
             latencies={} p99_us={} engine_events={}",
            self.totals.completed,
            self.totals.bytes,
            self.totals.drops,
            self.totals.redirects,
            self.totals.failures,
            self.totals.sessions,
            self.migrations,
            self.revocations,
            self.regenerations,
            self.events,
            self.samples.len(),
            self.latency.count(),
            self.latency.percentile_us(0.99),
            self.engine_events.len(),
        )
    }

    /// Coefficient of variation of per-server load in the final sample —
    /// the load-balance quality measure (0 = perfectly even).
    pub fn final_load_imbalance(&self) -> f64 {
        let Some(last) = self.samples.last() else {
            return 0.0;
        };
        let v = &last.per_server_cps;
        if v.is_empty() {
            return 0.0;
        }
        let mean = v.iter().sum::<f64>() / v.len() as f64;
        if mean == 0.0 {
            return 0.0;
        }
        let var = v.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / v.len() as f64;
        var.sqrt() / mean
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(t: u64, cps: f64) -> Sample {
        Sample {
            t_ms: t,
            cps,
            bps: cps * 1000.0,
            drops_per_sec: 0.0,
            redirects_per_sec: 0.0,
            migrations_total: 0,
            per_server_cps: vec![],
        }
    }

    fn result(cps: &[f64]) -> SimResult {
        SimResult {
            samples: cps
                .iter()
                .enumerate()
                .map(|(i, &c)| sample(i as u64 * 10_000, c))
                .collect(),
            totals: Counters::default(),
            regenerations: 0,
            migrations: 0,
            revocations: 0,
            cache: CacheStats::default(),
            mean_response_ms: 0.0,
            latency: LatencyHist::default(),
            events: 0,
            switch_peak_flows: 0,
            duration_ms: cps.len() as u64 * 10_000,
            trace: None,
            engine_events: Vec::new(),
        }
    }

    #[test]
    fn peak_and_steady() {
        let r = result(&[10.0, 50.0, 100.0, 90.0, 95.0, 100.0]);
        assert_eq!(r.peak_cps(), 100.0);
        assert!((r.steady_cps() - 95.0).abs() < 1e-9);
    }

    #[test]
    fn empty_result_is_zero() {
        let r = result(&[]);
        assert_eq!(r.peak_cps(), 0.0);
        assert_eq!(r.steady_cps(), 0.0);
        assert_eq!(r.final_load_imbalance(), 0.0);
    }

    #[test]
    fn event_trace_csv_round_trips_lines() {
        use dcws_core::EngineEvent;
        use dcws_graph::ServerId;
        let mut r = result(&[1.0]);
        r.engine_events = vec![
            (
                0,
                EventRecord {
                    seq: 0,
                    t_ms: 1_000,
                    event: EngineEvent::MigrationStarted {
                        doc: "/hot.html".into(),
                        coop: ServerId::new("s1:80"),
                        self_load: 40.0,
                        coop_load: 2.0,
                    },
                },
            ),
            (
                1,
                EventRecord {
                    seq: 0,
                    t_ms: 2_500,
                    event: EngineEvent::PullServed {
                        doc: "/hot.html".into(),
                        coop: Some(ServerId::new("s0:80")),
                    },
                },
            ),
        ];
        let path = std::env::temp_dir().join(format!("dcws-events-{}.csv", std::process::id()));
        r.save_event_trace(&path).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        let _ = std::fs::remove_file(&path);
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines[0], "t_ms,server,seq,kind,detail");
        assert_eq!(lines.len(), 3);
        // Exactly five comma-separated columns per line: details are
        // comma-free by construction.
        for line in &lines[1..] {
            assert_eq!(line.split(',').count(), 5, "bad line: {line}");
        }
        assert!(lines[1].starts_with("1000,0,0,migration_started,"));
        assert!(lines[2].starts_with("2500,1,0,pull_served,"));
    }

    #[test]
    fn latency_hist_percentiles() {
        let mut h = LatencyHist::default();
        assert_eq!(h.percentile_us(0.99), 0);
        // 99 fast fetches (~1 ms) and one slow outlier (~1 s).
        for _ in 0..99 {
            h.record_us(1_000);
        }
        h.record_us(1_000_000);
        assert_eq!(h.count(), 100);
        // p50 lands in the 1000 µs bucket [512, 1024).
        assert_eq!(h.percentile_us(0.50), 1_023);
        // p99 still in the fast bucket; p100 reaches the outlier's bucket.
        assert_eq!(h.percentile_us(0.99), 1_023);
        assert!(h.percentile_us(1.0) >= 1_000_000);
        assert!(h.p99_ms() < h.percentile_us(1.0) as f64 / 1_000.0);
    }

    #[test]
    fn digest_is_stable_and_distinguishes() {
        let a = result(&[1.0, 2.0]);
        let b = result(&[1.0, 2.0]);
        assert_eq!(a.digest(), b.digest());
        let mut c = result(&[1.0, 2.0]);
        c.totals.completed = 7;
        assert_ne!(a.digest(), c.digest());
    }

    #[test]
    fn imbalance_zero_when_even() {
        let mut r = result(&[1.0]);
        r.samples[0].per_server_cps = vec![5.0, 5.0, 5.0];
        assert!(r.final_load_imbalance() < 1e-12);
        r.samples[0].per_server_cps = vec![10.0, 0.0];
        assert!(r.final_load_imbalance() > 0.9);
    }
}
