//! The simulated cluster: servers with CPU/NIC/backlog models, Algorithm-2
//! clients, and the event loop that binds them.
//!
//! Every server hosts a real [`ServerEngine`] — the same code that runs on
//! TCP in `dcws-net` — so migrations, hyperlink rewrites, redirects,
//! piggybacked gossip, pulls, validations, and pings all actually happen;
//! only wire time and CPU time are modeled.
//!
//! # Scale-out structure
//!
//! Per-server and per-client state live in flat `Vec` slabs addressed by
//! index; the hot routing path parses the simulator's `s<idx>` host
//! naming directly instead of building `ServerId` keys, so steady-state
//! event handling performs no per-event map allocation (the run loop
//! carries a debug-build micro-assert, armed by `tests/alloc_probe.rs`).
//! The few id-keyed structures left — pull parking, the DNS resolver's
//! peer list — are either cold-path or deterministic-ordered (`BTreeMap`),
//! which is what makes crash schedules replay byte-identically.

use crate::config::{NetModel, SimConfig};
use crate::event::{Delivery, Event, EventQueue, Origin, Purpose, SimTime};
use crate::metrics::{Counters, LatencyHist, Sample, SimResult};
use dcws_baselines::{CentralRouter, RoundRobinDns, Strategy};
use dcws_core::{EventRecord, MemStore, Outcome, ServerConfig, ServerEngine};
use dcws_graph::{DocKind, ServerId};
use dcws_http::{Request, Response, StatusCode, Url};
use dcws_workloads::{materialize::materialize, PageKind};
use rand::rngs::StdRng;
use rand::Rng;
use std::collections::{BTreeMap, HashMap, VecDeque};

/// Synthetic `from` index for connection-level failures.
const FROM_NONE: usize = usize::MAX;

/// Estimated header bytes per response on the wire (request + response
/// heads + TCP setup/teardown packets).
const WIRE_OVERHEAD_BYTES: usize = 300;

struct ServerSt {
    engine: ServerEngine,
    /// Socket queue of backlogged requests (L_sq limit applies).
    queue: VecDeque<(Request, Origin)>,
    busy: bool,
    /// The response being serviced, shipped at `ServiceDone`.
    in_service: Option<(Response, Origin)>,
    nic_free_at: SimTime,
    /// Requests parked awaiting a lazy pull, by (home index, path).
    /// Ordered so crash-time drains replay deterministically.
    parked: BTreeMap<(usize, String), Vec<(Request, Origin)>>,
    crashed: bool,
    /// 503s issued by the front end.
    drops: u64,
}

#[derive(Debug, Clone)]
enum CacheEntry {
    Html {
        anchors: Vec<String>,
        embeds: Vec<String>,
    },
    Other,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum CState {
    NewSession,
    IssueDoc,
    AwaitDoc,
    Images,
    NextStep,
}

struct PendingFetch {
    url: Url,
    redirects_left: u32,
    /// When the first request of this fetch left the client, for
    /// end-to-end response-time accounting (redirect hops and lazy-pull
    /// waits included).
    issued_at: SimTime,
}

struct ClientSt {
    rng: StdRng,
    state: CState,
    cache: HashMap<String, CacheEntry>,
    steps_left: u32,
    current_url: Option<Url>,
    current_anchors: Vec<String>,
    pending_doc: Option<(u64, PendingFetch)>,
    /// Outstanding image fetches (≤ `helpers` entries); a flat vec beats
    /// a map at this size and keeps the hot path allocation-light.
    images_pending: Vec<(u64, PendingFetch)>,
    images_queue: VecDeque<String>,
    next_token: u64,
    backoff_pow: u32,
}

impl ClientSt {
    /// The in-flight image fetch for `token`, if any.
    fn image_mut(&mut self, token: u64) -> Option<&mut PendingFetch> {
        self.images_pending
            .iter_mut()
            .find(|(t, _)| *t == token)
            .map(|(_, p)| p)
    }

    /// Remove and return the in-flight image fetch for `token`.
    fn image_take(&mut self, token: u64) -> Option<PendingFetch> {
        let pos = self.images_pending.iter().position(|(t, _)| *t == token)?;
        Some(self.images_pending.remove(pos).1)
    }
}

/// The simulated cluster. Construct with [`SimCluster::new`], then call
/// [`SimCluster::run`] (or use the [`crate::run_sim`] convenience).
pub struct SimCluster {
    cfg: SimConfig,
    queue: EventQueue,
    now: SimTime,
    servers: Vec<ServerSt>,
    clients: Vec<ClientSt>,
    /// Cold-path id→index map (peer lookups, DNS results). The hot client
    /// route parses `s<idx>` hosts directly and never touches this.
    id_to_idx: HashMap<ServerId, usize>,
    /// Index→id slab, for restarts and control-plane targets.
    server_ids: Vec<ServerId>,
    /// The effective per-server engine config (strategy adjustments
    /// applied), kept for cold restarts.
    server_config: ServerConfig,
    entry_urls: Vec<Url>,
    dns: Option<RoundRobinDns>,
    router: Option<CentralRouter>,
    /// Router pseudo-server CPU/queue state.
    router_queue: VecDeque<(Request, Origin)>,
    router_busy: bool,
    switch_free_at: SimTime,
    /// Active flows under [`NetModel::SharedBandwidth`].
    switch_flows: u64,
    switch_peak_flows: u64,
    counters: Counters,
    samples: Vec<Sample>,
    last_counters: Counters,
    last_server_served: Vec<u64>,
    /// Scheduled crashes (ms, server index) from the config.
    crashes: Vec<(u64, usize)>,
    /// Scheduled cold restarts (ms, server index); see
    /// [`SimCluster::with_restart_schedule`].
    restarts: Vec<(u64, usize)>,
    /// Memoized client-side parse results keyed by (final URL, body hash):
    /// clients re-fetch the same served bytes constantly, and parsing is a
    /// pure function of them. Entries are invalidated naturally because a
    /// regenerated document hashes differently.
    parse_cache: HashMap<(String, u64), (Vec<String>, Vec<String>)>,
    /// Access log accumulated when `record_trace` is set.
    trace_out: Vec<crate::trace::TraceEvent>,
    /// Engine events drained from every server at each sample point
    /// (so the bounded per-engine ring never overflows between samples),
    /// tagged with the server index.
    engine_events: Vec<(usize, EventRecord)>,
    /// Outstanding open-loop replay fetches: token -> (client, redirects left).
    replay_pending: HashMap<u64, (usize, u32)>,
    replay_next_token: u64,
    /// Sum of end-to-end fetch latencies (200-completed only), µs.
    latency_us_sum: u64,
    /// Number of latencies in `latency_us_sum`.
    latency_n: u64,
    /// Log₂-bucketed end-to-end latency distribution (200-completed only).
    latency: LatencyHist,
    /// Events handled by the run loop.
    events: u64,
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h = (h ^ b as u64).wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Index used for the router pseudo-server in events.
fn router_idx(n_servers: usize) -> usize {
    n_servers
}

impl SimCluster {
    /// Build a cluster per `cfg`: create engines, distribute the dataset
    /// (server 0 is the home under DCWS; full replication otherwise),
    /// and register peers.
    pub fn new(cfg: SimConfig) -> Self {
        Self::with_crashes(cfg, Vec::new())
    }

    /// [`SimCluster::new`] driven by the same seeded fault vocabulary as
    /// the real transport: every [`Blackout`](dcws_net::Blackout) in
    /// `plan` whose peer names a simulated server (`"s2:80"` or bare
    /// `"2"`; the `"*"` wildcard is ignored) becomes a crash at its
    /// `from_ms`. The simulator models fail-stop servers, so blackouts
    /// do not heal at `until_ms` — use the real-TCP chaos suite for
    /// partition-heal scenarios.
    pub fn with_fault_plan(cfg: SimConfig, plan: &dcws_net::FaultPlan) -> Self {
        let n = cfg.n_servers;
        let mut crashes: Vec<(u64, usize)> = plan
            .blackouts
            .iter()
            .filter_map(|b| {
                let idx = (0..n).find(|i| {
                    b.peer == format!("s{i}:80")
                        || b.peer == format!("s{i}")
                        || b.peer == format!("{i}")
                })?;
                Some((b.from_ms, idx))
            })
            .collect();
        crashes.sort_unstable();
        // Fail-stop: only the first blackout per server matters.
        let mut seen = std::collections::HashSet::new();
        crashes.retain(|&(_, idx)| seen.insert(idx));
        Self::with_crashes(cfg, crashes)
    }

    /// [`SimCluster::new`] plus scheduled server crashes `(t_ms, server)`
    /// for the fault-tolerance experiments.
    pub fn with_crashes(cfg: SimConfig, crashes: Vec<(u64, usize)>) -> Self {
        assert!(cfg.n_servers >= 1, "need at least one server");
        assert!(cfg.n_clients >= 1, "need at least one client");
        let ids: Vec<ServerId> = (0..cfg.n_servers)
            .map(|i| ServerId::new(format!("s{i}:80")))
            .collect();
        // Replicated baselines must not run DCWS migrations on top.
        let mut server_config = cfg.server_config.clone();
        if cfg.strategy.replicated() {
            server_config.min_cps_to_migrate = f64::INFINITY;
        }
        let mut servers: Vec<ServerSt> = ids
            .iter()
            .map(|id| ServerSt {
                engine: ServerEngine::new(
                    id.clone(),
                    server_config.clone(),
                    Box::new(MemStore::new()),
                ),
                queue: VecDeque::new(),
                busy: false,
                in_service: None,
                nic_free_at: 0,
                parked: BTreeMap::new(),
                crashed: false,
                drops: 0,
            })
            .collect();

        // Register the peer group on every engine.
        for srv in &mut servers {
            for id in &ids {
                srv.engine.add_peer(id.clone());
            }
        }

        // Distribute the dataset.
        let replicated = cfg.strategy.replicated();
        let targets: Vec<usize> = if replicated {
            (0..servers.len()).collect()
        } else {
            vec![0]
        };
        for &t in &targets {
            for doc in &cfg.dataset.docs {
                let kind = match doc.kind {
                    PageKind::Html => DocKind::Html,
                    PageKind::Image => DocKind::Image,
                };
                servers[t]
                    .engine
                    .publish(&doc.name, materialize(doc), kind, doc.entry_point);
            }
        }

        let id_to_idx: HashMap<ServerId, usize> = ids
            .iter()
            .cloned()
            .enumerate()
            .map(|(i, id)| (id, i))
            .collect();

        // Entry-point URLs always name the home server (server 0); for
        // replicated strategies routing overrides the host anyway.
        let (h, p) = ids[0].host_port();
        let entry_urls: Vec<Url> = cfg
            .dataset
            .entry_points()
            .iter()
            .map(|d| Url::absolute(h, p, d.name.clone()).expect("dataset names are valid paths"))
            .collect();
        assert!(!entry_urls.is_empty(), "dataset has no entry points");

        let dns = match cfg.strategy {
            Strategy::RoundRobinDns { ttl_ms } => Some(RoundRobinDns::new(ids.clone(), ttl_ms)),
            _ => None,
        };
        let router = match cfg.strategy {
            Strategy::CentralRouter { forward_cpu_us } => {
                Some(CentralRouter::new(ids.clone(), forward_cpu_us))
            }
            _ => None,
        };

        if let Some(starts) = &cfg.client_starts {
            assert_eq!(starts.len(), cfg.n_clients, "client_starts length");
        }
        if let Some(stops) = &cfg.client_stops {
            assert_eq!(stops.len(), cfg.n_clients, "client_stops length");
        }
        if let Some(h) = &cfg.hot_entry {
            assert!((0.0..=1.0).contains(&h.prob), "hot_entry.prob in [0,1]");
        }

        // Each client draws from its own named stream off the master seed,
        // so adding clients (or scenario draws) never perturbs existing ones.
        let clients: Vec<ClientSt> = (0..cfg.n_clients)
            .map(|i| ClientSt {
                rng: crate::seed::stream(cfg.seed, "client", i as u64),
                state: CState::NewSession,
                cache: HashMap::new(),
                steps_left: 0,
                current_url: None,
                current_anchors: Vec::new(),
                pending_doc: None,
                images_pending: Vec::new(),
                images_queue: VecDeque::new(),
                next_token: 0,
                backoff_pow: 0,
            })
            .collect();

        let n = servers.len();
        // Steady state keeps roughly a few events in flight per client plus
        // one tick per server; presizing keeps heap growth out of the loop.
        let queue_cap = (cfg.n_clients * 8 + n * 2 + 64).next_power_of_two();
        SimCluster {
            cfg,
            queue: EventQueue::with_capacity(queue_cap),
            now: 0,
            servers,
            clients,
            id_to_idx,
            server_ids: ids,
            server_config,
            entry_urls,
            dns,
            router,
            router_queue: VecDeque::new(),
            router_busy: false,
            switch_free_at: 0,
            switch_flows: 0,
            switch_peak_flows: 0,
            counters: Counters::default(),
            samples: Vec::new(),
            last_counters: Counters::default(),
            last_server_served: vec![0; n],
            crashes,
            restarts: Vec::new(),
            parse_cache: HashMap::new(),
            trace_out: Vec::new(),
            engine_events: Vec::new(),
            replay_pending: HashMap::new(),
            replay_next_token: 0,
            latency_us_sum: 0,
            latency_n: 0,
            latency: LatencyHist::default(),
            events: 0,
        }
    }

    /// Schedule cold restarts `(t_ms, server)`: a crashed server comes back
    /// with a fresh engine and an empty store (plus the dataset it would
    /// hold on a cold deploy: the originals on the home, a full copy under
    /// replicated strategies). Restarting a live server is a no-op, so pair
    /// each entry with an earlier crash.
    pub fn with_restart_schedule(mut self, restarts: Vec<(u64, usize)>) -> Self {
        self.restarts = restarts;
        self
    }

    /// Run to completion and reduce the metrics.
    pub fn run(mut self) -> SimResult {
        self.run_loop();
        self.collect()
    }

    /// Run to completion, then audit quiesced ownership (documents lost,
    /// multiply owned, GLT staleness) across the surviving servers. The
    /// scenario invariant tests use this; `run` skips the audit walk.
    pub fn run_audited(mut self) -> (SimResult, OwnershipAudit) {
        self.run_loop();
        let result = self.collect();
        let audit = self.quiesce_audit();
        (result, audit)
    }

    fn run_loop(&mut self) {
        let duration_us = self.cfg.duration_ms * 1_000;
        // Prime the schedule: ticks, samples, staggered client starts,
        // crashes, restarts.
        for s in 0..self.servers.len() {
            self.queue.push(
                self.cfg.tick_interval_ms * 1_000,
                Event::ServerTick { server: s },
            );
        }
        self.queue
            .push(self.cfg.sample_interval_ms * 1_000, Event::Sample);
        if let Some(trace) = self.cfg.replay.clone() {
            // Open-loop replay: requests fire at their recorded times;
            // Algorithm-2 clients stay idle.
            for (idx, ev) in trace.events.iter().enumerate() {
                self.queue
                    .push(ev.t_ms * 1_000 + 1, Event::ReplayFire { idx });
            }
        } else if let Some(starts) = self.cfg.client_starts.clone() {
            // Scenario-shaped arrivals: each client wakes at its own time.
            for (c, &t_ms) in starts.iter().enumerate() {
                self.queue
                    .push((t_ms * 1_000).max(1), Event::ClientWake { client: c });
            }
        } else {
            for c in 0..self.clients.len() {
                // Spread session starts over the first second.
                let jitter = (c as u64 * 1_000_000 / self.clients.len() as u64).max(1);
                self.queue.push(jitter, Event::ClientWake { client: c });
            }
        }
        for &(t_ms, s) in &self.restarts {
            self.queue
                .push((t_ms * 1_000).max(1), Event::ServerRestart { server: s });
        }
        let mut crashes = std::mem::take(&mut self.crashes);
        crashes.sort();
        let mut crash_iter = crashes.into_iter().peekable();

        loop {
            // The queue pop itself must never allocate: it is the one
            // operation every single event pays for. The probe harness
            // (tests/alloc_probe.rs) arms this assert.
            #[cfg(debug_assertions)]
            let allocs_before = crate::alloc::allocations();
            let popped = self.queue.pop();
            #[cfg(debug_assertions)]
            debug_assert_eq!(
                crate::alloc::allocations(),
                allocs_before,
                "event-queue pop must not allocate"
            );
            let Some((t, ev)) = popped else { break };
            // Apply any crash whose time has come before this event.
            while let Some(&(ct_ms, cs)) = crash_iter.peek() {
                if ct_ms * 1_000 <= t {
                    self.crash_server(cs);
                    crash_iter.next();
                } else {
                    break;
                }
            }
            if t > duration_us {
                break;
            }
            self.now = t;
            self.events += 1;
            self.handle(ev);
        }
    }

    fn crash_server(&mut self, s: usize) {
        let srv = &mut self.servers[s];
        srv.crashed = true;
        srv.busy = false;
        srv.in_service = None;
        // Connections die: every queued requester sees a failure.
        let dead: Vec<(Request, Origin)> = srv.queue.drain(..).collect();
        // BTreeMap: drains in key order, so the failure deliveries replay
        // identically run to run.
        let parked: Vec<(Request, Origin)> = std::mem::take(&mut srv.parked)
            .into_values()
            .flatten()
            .collect();
        for (_, origin) in dead.into_iter().chain(parked) {
            self.queue.push(
                self.now + 1,
                Event::Deliver {
                    origin,
                    delivery: Delivery::Failed,
                    from: FROM_NONE,
                },
            );
        }
    }

    fn collect(&mut self) -> SimResult {
        let mut regenerations = 0;
        let mut migrations = 0;
        let mut revocations = 0;
        let mut cache = dcws_cache::CacheStats::default();
        for (i, s) in self.servers.iter_mut().enumerate() {
            let st = s.engine.stats();
            regenerations += st.regenerations;
            migrations += st.migrations;
            revocations += st.revocations;
            cache = cache
                .merged(&s.engine.regen_cache().stats())
                .merged(&s.engine.coop_cache().stats());
            let tail: Vec<(usize, EventRecord)> = s
                .engine
                .drain_events()
                .into_iter()
                .map(|r| (i, r))
                .collect();
            self.engine_events.extend(tail);
        }
        // Causal order across the cluster: engine time, then server, then
        // each engine's own sequence number.
        self.engine_events
            .sort_by_key(|(srv, r)| (r.t_ms, *srv, r.seq));
        SimResult {
            samples: std::mem::take(&mut self.samples),
            totals: self.counters,
            regenerations,
            migrations,
            revocations,
            cache,
            mean_response_ms: if self.latency_n == 0 {
                0.0
            } else {
                self.latency_us_sum as f64 / self.latency_n as f64 / 1_000.0
            },
            latency: self.latency.clone(),
            events: self.events,
            switch_peak_flows: self.switch_peak_flows,
            duration_ms: self.cfg.duration_ms,
            trace: if self.cfg.record_trace {
                Some(crate::trace::Trace::new(std::mem::take(
                    &mut self.trace_out,
                )))
            } else {
                None
            },
            engine_events: std::mem::take(&mut self.engine_events),
        }
    }

    fn handle(&mut self, ev: Event) {
        match ev {
            Event::RequestArrive {
                server,
                req,
                origin,
            } => self.request_arrive(server, req, origin),
            Event::ServiceDone { server } => self.service_done(server),
            Event::Deliver {
                origin,
                delivery,
                from,
            } => self.deliver(origin, delivery, from),
            Event::ServerTick { server } => self.server_tick(server),
            Event::ClientWake { client } => self.client_wake(client),
            Event::Sample => self.sample(),
            Event::ReplayFire { idx } => self.replay_fire(idx),
            Event::SwitchRelease => {
                self.switch_flows = self.switch_flows.saturating_sub(1);
            }
            Event::ServerRestart { server } => self.restart_server(server),
        }
    }

    /// Cold-restart a crashed server: fresh engine, empty store, the full
    /// peer group re-registered, plus the dataset a cold deploy would hold.
    /// Everything it had migrated or cached before the crash is gone — the
    /// group must re-converge, which is exactly what the rolling-restart
    /// scenario measures.
    fn restart_server(&mut self, s: usize) {
        if !self.servers[s].crashed {
            return;
        }
        let mut engine = ServerEngine::new(
            self.server_ids[s].clone(),
            self.server_config.clone(),
            Box::new(MemStore::new()),
        );
        for id in &self.server_ids {
            engine.add_peer(id.clone());
        }
        if s == 0 || self.cfg.strategy.replicated() {
            for doc in &self.cfg.dataset.docs {
                let kind = match doc.kind {
                    PageKind::Html => DocKind::Html,
                    PageKind::Image => DocKind::Image,
                };
                engine.publish(&doc.name, materialize(doc), kind, doc.entry_point);
            }
        }
        let srv = &mut self.servers[s];
        // Preserve the dead engine's event tail before replacing it.
        let tail: Vec<(usize, EventRecord)> = srv
            .engine
            .drain_events()
            .into_iter()
            .map(|r| (s, r))
            .collect();
        self.engine_events.extend(tail);
        let srv = &mut self.servers[s];
        srv.engine = engine;
        srv.queue.clear();
        srv.busy = false;
        srv.in_service = None;
        srv.nic_free_at = self.now;
        srv.parked.clear();
        srv.crashed = false;
        // The fresh engine's served counter restarts at zero; realign the
        // per-sample CPS baseline or the next sample underflows.
        self.last_server_served[s] = 0;
        self.queue.push(
            self.now + self.cfg.tick_interval_ms * 1_000,
            Event::ServerTick { server: s },
        );
    }

    // ---------------------------------------------------------------- servers

    fn request_arrive(&mut self, server: usize, req: Request, origin: Origin) {
        // Router pseudo-server.
        if self.router.is_some() && server == router_idx(self.servers.len()) {
            self.router_queue.push_back((req, origin));
            if !self.router_busy {
                self.router_start();
            }
            return;
        }
        let latency = self.cfg.cost.latency_us;
        let srv = &mut self.servers[server];
        if srv.crashed {
            self.queue.push(
                self.now + latency,
                Event::Deliver {
                    origin,
                    delivery: Delivery::Failed,
                    from: FROM_NONE,
                },
            );
            return;
        }
        if srv.queue.len() >= srv.engine.config().socket_queue_len {
            // Graceful 503 from the front end (§5.2).
            srv.drops += 1;
            let resp = Response::service_unavailable(1);
            self.queue.push(
                self.now + latency + self.cfg.cost.drop_cpu_us,
                Event::Deliver {
                    origin,
                    delivery: Delivery::Response(resp),
                    from: server,
                },
            );
            return;
        }
        srv.queue.push_back((req, origin));
        if !srv.busy {
            self.start_service(server);
        }
    }

    fn start_service(&mut self, server: usize) {
        let now_ms = self.now / 1_000;
        let cost = self.cfg.cost.clone();
        let srv = &mut self.servers[server];
        let Some((req, origin)) = srv.queue.pop_front() else {
            return;
        };
        let regen_before = srv.engine.stats().regenerations;
        let outcome = srv.engine.handle_request(&req, now_ms);
        let regens = srv.engine.stats().regenerations - regen_before;
        match outcome {
            Outcome::Response(_) | Outcome::Stream { .. } => {
                // The discrete-event model charges CPU per byte either
                // way, so streamed outcomes collapse to buffered here.
                let resp = outcome
                    .into_response()
                    .expect("response/stream outcome drains to a response");
                let service = cost.service_us(resp.body.len()) + regens * cost.regen_cpu_us;
                srv.in_service = Some((resp, origin));
                srv.busy = true;
                self.queue
                    .push(self.now + service, Event::ServiceDone { server });
            }
            Outcome::FetchNeeded { home, path } => {
                // Park the request; first parker triggers the pull, later
                // ones coalesce onto it (the simulator's analogue of the
                // transport singleflight).
                let home_idx = self.id_to_idx.get(&home).copied();
                let key = (home_idx.unwrap_or(FROM_NONE), path.clone());
                let first = !srv.parked.contains_key(&key);
                if !first {
                    srv.engine.coop_cache().record_coalesced_wait();
                }
                srv.parked.entry(key).or_default().push((req, origin));
                srv.busy = true;
                self.queue
                    .push(self.now + cost.conn_cpu_us, Event::ServiceDone { server });
                if first {
                    let pull = srv.engine.make_pull_request(&path, now_ms);
                    let ev = Event::RequestArrive {
                        server: home_idx.unwrap_or(FROM_NONE),
                        req: pull,
                        origin: Origin::Server {
                            id: server,
                            purpose: Purpose::Pull {
                                home: home.clone(),
                                path,
                            },
                        },
                    };
                    match home_idx {
                        Some(_) => self.queue.push(self.now + cost.latency_us, ev),
                        None => {
                            // Unknown home: immediate failure.
                            if let Event::RequestArrive { origin, .. } = ev {
                                self.queue.push(
                                    self.now + 1,
                                    Event::Deliver {
                                        origin,
                                        delivery: Delivery::Failed,
                                        from: FROM_NONE,
                                    },
                                );
                            }
                        }
                    }
                }
            }
        }
    }

    fn service_done(&mut self, server: usize) {
        // Router pseudo-server: forwarding slot freed.
        if self.router.is_some() && server == router_idx(self.servers.len()) {
            self.router_busy = false;
            if !self.router_queue.is_empty() {
                self.router_start();
            }
            return;
        }
        let cost = self.cfg.cost.clone();
        let srv = &mut self.servers[server];
        if srv.crashed {
            return;
        }
        srv.busy = false;
        if let Some((resp, origin)) = srv.in_service.take() {
            // Transmission: serialize on the server NIC, then the switch.
            let bytes = resp.body.len() + WIRE_OVERHEAD_BYTES;
            let tx_start = self.now.max(srv.nic_free_at);
            let tx_end = tx_start + cost.tx_us(bytes);
            srv.nic_free_at = tx_end;
            let sw_end = match self.cfg.net_model {
                NetModel::ConstantBandwidth => {
                    // One aggregate pipe: transfers serialize at full rate.
                    let e = tx_end.max(self.switch_free_at) + cost.switch_us(bytes);
                    self.switch_free_at = e;
                    e
                }
                NetModel::SharedBandwidth => {
                    // Fair share, snapshotted at admission: with k flows in
                    // flight this one runs at capacity/k for its whole
                    // transfer. SwitchRelease returns the share.
                    self.switch_flows += 1;
                    self.switch_peak_flows = self.switch_peak_flows.max(self.switch_flows);
                    let e = tx_end + cost.switch_us(bytes) * self.switch_flows;
                    self.queue.push(e, Event::SwitchRelease);
                    e
                }
            };
            self.queue.push(
                sw_end + cost.latency_us,
                Event::Deliver {
                    origin,
                    delivery: Delivery::Response(resp),
                    from: server,
                },
            );
        }
        if !self.servers[server].queue.is_empty() {
            self.start_service(server);
        }
    }

    fn server_tick(&mut self, server: usize) {
        let now_ms = self.now / 1_000;
        let latency = self.cfg.cost.latency_us;
        if !self.servers[server].crashed {
            let out = self.servers[server].engine.tick(now_ms);
            for (peer, req) in out.pings {
                if let Some(&idx) = self.id_to_idx.get(&peer) {
                    self.queue.push(
                        self.now + latency,
                        Event::RequestArrive {
                            server: idx,
                            req,
                            origin: Origin::Server {
                                id: server,
                                purpose: Purpose::Ping { peer },
                            },
                        },
                    );
                }
            }
            for (home, req) in out.validations {
                if let Some(&idx) = self.id_to_idx.get(&home) {
                    let path = req.target.clone();
                    self.queue.push(
                        self.now + latency,
                        Event::RequestArrive {
                            server: idx,
                            req,
                            origin: Origin::Server {
                                id: server,
                                purpose: Purpose::Validate { home, path },
                            },
                        },
                    );
                }
            }
            for (coop, req) in out.pushes {
                if let Some(&idx) = self.id_to_idx.get(&coop) {
                    self.queue.push(
                        self.now + latency,
                        Event::RequestArrive {
                            server: idx,
                            req,
                            origin: Origin::Server {
                                id: server,
                                purpose: Purpose::Push,
                            },
                        },
                    );
                }
            }
            self.queue.push(
                self.now + self.cfg.tick_interval_ms * 1_000,
                Event::ServerTick { server },
            );
        }
    }

    fn router_start(&mut self) {
        let Some(router) = self.router.as_mut() else {
            return;
        };
        let Some((req, origin)) = self.router_queue.pop_front() else {
            return;
        };
        let backend = router.forward();
        let cpu = router.forward_cpu_us;
        let idx = self.id_to_idx[&backend];
        // Forwarding consumes router CPU; the backend sees the request
        // after that plus a hop.
        self.queue.push(
            self.now + cpu + self.cfg.cost.latency_us,
            Event::RequestArrive {
                server: idx,
                req,
                origin,
            },
        );
        // Model the router CPU as serial: next forward after `cpu`.
        self.router_busy = true;
        let n = self.servers.len();
        self.queue.push(
            self.now + cpu,
            Event::ServiceDone {
                server: router_idx(n),
            },
        );
    }

    // --------------------------------------------------------------- delivery

    fn deliver(&mut self, origin: Origin, delivery: Delivery, from: usize) {
        match origin {
            Origin::Client { id, token } if self.cfg.replay.is_some() => {
                self.replay_deliver(id, token, delivery)
            }
            Origin::Client { id, token } => self.client_deliver(id, token, delivery, from),
            Origin::Server { id, purpose } => self.server_deliver(id, purpose, delivery),
        }
    }

    // ----------------------------------------------------------------- replay

    /// Fire one recorded access-log request (open loop).
    fn replay_fire(&mut self, idx: usize) {
        let ev = self
            .cfg
            .replay
            .as_ref()
            .expect("replay_fire only scheduled in replay mode")
            .events[idx]
            .clone();
        let Ok(url) = Url::parse(&ev.url) else { return };
        let client = ev.client % self.clients.len();
        let token = self.replay_next_token;
        self.replay_next_token += 1;
        self.replay_pending
            .insert(token, (client, self.cfg.client.max_redirects));
        self.send_client_request(client, &url, token);
    }

    /// Digest a response to a replayed request: count it, follow 301s,
    /// never retry (open loop).
    fn replay_deliver(&mut self, _client: usize, token: u64, delivery: Delivery) {
        let Some((client, redirects_left)) = self.replay_pending.remove(&token) else {
            return;
        };
        let resp = match delivery {
            Delivery::Failed => {
                self.counters.failures += 1;
                return;
            }
            Delivery::Response(r) => r,
        };
        match resp.status {
            StatusCode::Ok => {
                self.counters.completed += 1;
                self.counters.bytes += resp.body.len() as u64;
            }
            StatusCode::ServiceUnavailable => {
                self.counters.drops += 1;
            }
            StatusCode::MovedPermanently => {
                self.counters.redirects += 1;
                if redirects_left > 0 {
                    if let Some(loc) = resp.location() {
                        if loc.is_absolute() {
                            self.replay_pending
                                .insert(token, (client, redirects_left - 1));
                            self.send_client_request(client, &loc, token);
                        }
                    }
                }
            }
            _ => {
                self.counters.failures += 1;
            }
        }
    }

    fn server_deliver(&mut self, server: usize, purpose: Purpose, delivery: Delivery) {
        if self.servers[server].crashed {
            return;
        }
        let now_ms = self.now / 1_000;
        match purpose {
            Purpose::Pull { home, path } => {
                let home_idx = self.id_to_idx.get(&home).copied().unwrap_or(FROM_NONE);
                let key = (home_idx, path.clone());
                let parked = self.servers[server].parked.remove(&key).unwrap_or_default();
                let ok = match &delivery {
                    Delivery::Response(resp) if resp.status == StatusCode::Ok => self.servers
                        [server]
                        .engine
                        .store_pulled(&home, &path, resp, now_ms),
                    _ => false,
                };
                if ok {
                    // Requeue the parked requests at the head of the line.
                    let srv = &mut self.servers[server];
                    for item in parked.into_iter().rev() {
                        srv.queue.push_front(item);
                    }
                    if !srv.busy {
                        self.start_service(server);
                    }
                } else {
                    // Home declined or is unreachable: learn from a
                    // redirect answer, then relay to the waiters.
                    let resp = match delivery {
                        Delivery::Response(r) => r,
                        Delivery::Failed => Response::service_unavailable(1),
                    };
                    self.servers[server]
                        .engine
                        .pull_rejected(&home, &path, &resp, now_ms);
                    for (_, origin) in parked {
                        self.queue.push(
                            self.now + 1,
                            Event::Deliver {
                                origin,
                                delivery: Delivery::Response(resp.clone()),
                                from: server,
                            },
                        );
                    }
                }
            }
            Purpose::Validate { home, path } => match delivery {
                Delivery::Response(resp) => {
                    self.servers[server]
                        .engine
                        .handle_validation_response(&home, &path, &resp, now_ms);
                }
                // Home unreachable: the copy is served stale rather than
                // discarded (graceful degradation, docs/RESILIENCE.md).
                Delivery::Failed => {
                    self.servers[server]
                        .engine
                        .validation_failed(&home, &path, now_ms);
                }
            },
            Purpose::Ping { peer } => match delivery {
                // ANY response proves the peer is alive — a 503 means
                // overloaded, not dead. Only connection failure counts
                // against it.
                Delivery::Response(resp) => {
                    self.servers[server]
                        .engine
                        .ping_result(&peer, true, Some(&resp.headers));
                }
                Delivery::Failed => {
                    self.servers[server].engine.ping_result(&peer, false, None);
                }
            },
            Purpose::Push => {}
        }
    }

    // ---------------------------------------------------------------- clients

    /// Resolve a simulator host name (`s<idx>`, port 80) to a server slab
    /// index without building a `ServerId` — this sits on every client
    /// request, and is what keeps routing allocation-free.
    fn host_to_idx(&self, host: &str, port: u16) -> Option<usize> {
        if port != 80 {
            return None;
        }
        let idx: usize = host.strip_prefix('s')?.parse().ok()?;
        (idx < self.servers.len()).then_some(idx)
    }

    /// Route a client request for `url` to a server index per strategy.
    fn route(&mut self, client: usize, url: &Url) -> Option<usize> {
        match &self.cfg.strategy {
            Strategy::Dcws => {
                let host = url.host()?;
                self.host_to_idx(host, url.port())
            }
            Strategy::Single => Some(0),
            Strategy::RoundRobinDns { .. } => {
                let dns = self.dns.as_mut().expect("dns strategy has resolver");
                let sid = dns.resolve(client, self.now / 1_000);
                self.id_to_idx.get(&sid).copied()
            }
            Strategy::CentralRouter { .. } => Some(router_idx(self.servers.len())),
        }
    }

    fn send_client_request(&mut self, client: usize, url: &Url, token: u64) {
        if self.cfg.record_trace {
            self.trace_out.push(crate::trace::TraceEvent {
                t_ms: self.now / 1_000,
                client,
                url: url.to_string(),
            });
        }
        let Some(target) = self.route(client, url) else {
            // Unroutable (e.g. absolute link to a host outside the group):
            // synthesize a failure.
            self.queue.push(
                self.now + 1,
                Event::Deliver {
                    origin: Origin::Client { id: client, token },
                    delivery: Delivery::Failed,
                    from: FROM_NONE,
                },
            );
            return;
        };
        let req = Request::get(url.path());
        self.queue.push(
            self.now + self.cfg.cost.latency_us,
            Event::RequestArrive {
                server: target,
                req,
                origin: Origin::Client { id: client, token },
            },
        );
    }

    /// Exponential back-off with +-25 % client-specific jitter; without
    /// jitter the whole client population retries in synchronized waves
    /// and the cluster oscillates between overload and idleness.
    fn backoff_us(&mut self, client: usize, pow: u32) -> SimTime {
        let base = 1_000_000u64 << pow.min(self.cfg.client.max_backoff_pow);
        let jitter = self.clients[client].rng.gen_range(0..=base / 2);
        base * 3 / 4 + jitter
    }

    fn client_wake(&mut self, client: usize) {
        match self.clients[client].state {
            CState::NewSession => {
                if let Some(stops) = &self.cfg.client_stops {
                    // Retired client: the session that would start now never
                    // does (diurnal ramp-down). No further wakes.
                    if self.now / 1_000 >= stops[client] {
                        return;
                    }
                }
                let hot = match &self.cfg.hot_entry {
                    Some(h) if self.now / 1_000 >= h.from_ms && h.entry < self.entry_urls.len() => {
                        Some(h.clone())
                    }
                    _ => None,
                };
                let c = &mut self.clients[client];
                c.cache.clear();
                c.steps_left = c.rng.gen_range(1..=self.cfg.client.max_steps);
                let e = match hot {
                    Some(h) if c.rng.gen_bool(h.prob) => h.entry,
                    _ => c.rng.gen_range(0..self.entry_urls.len()),
                };
                c.current_url = Some(self.entry_urls[e].clone());
                c.current_anchors.clear();
                c.state = CState::IssueDoc;
                self.client_issue_doc(client);
            }
            CState::IssueDoc => self.client_issue_doc(client),
            CState::Images => self.client_launch_images(client),
            CState::NextStep => self.client_next_step(client),
            CState::AwaitDoc => {} // spurious wake; response will drive us
        }
    }

    fn client_issue_doc(&mut self, client: usize) {
        let c = &mut self.clients[client];
        let url = c.current_url.clone().expect("IssueDoc has a current URL");
        let key = url.to_string();
        if self.cfg.client.cache_enabled {
            if let Some(CacheEntry::Html { anchors, embeds }) = c.cache.get(&key).cloned() {
                // Cache hit: no request; straight to the image phase
                // (embeds were cached along with the page in this session).
                c.current_anchors = anchors;
                c.images_queue = embeds
                    .into_iter()
                    .filter(|e| !c.cache.contains_key(e))
                    .collect();
                c.state = CState::Images;
                let overhead = self.cfg.cost.client_overhead_us;
                self.queue
                    .push(self.now + overhead, Event::ClientWake { client });
                return;
            }
        }
        let token = c.next_token;
        c.next_token += 1;
        c.pending_doc = Some((
            token,
            PendingFetch {
                url: url.clone(),
                redirects_left: self.cfg.client.max_redirects,
                issued_at: self.now,
            },
        ));
        c.state = CState::AwaitDoc;
        self.send_client_request(client, &url, token);
    }

    fn client_launch_images(&mut self, client: usize) {
        let helpers = self.cfg.client.helpers;
        loop {
            let c = &mut self.clients[client];
            if c.images_pending.len() >= helpers {
                break;
            }
            let Some(next) = c.images_queue.pop_front() else {
                break;
            };
            if self.cfg.client.cache_enabled && c.cache.contains_key(&next) {
                continue;
            }
            let Ok(url) = Url::parse(&next) else { continue };
            let token = c.next_token;
            c.next_token += 1;
            c.images_pending.push((
                token,
                PendingFetch {
                    url: url.clone(),
                    redirects_left: self.cfg.client.max_redirects,
                    issued_at: self.now,
                },
            ));
            self.send_client_request(client, &url, token);
        }
        let c = &mut self.clients[client];
        if c.images_pending.is_empty() && c.images_queue.is_empty() {
            c.state = CState::NextStep;
            let overhead = self.cfg.cost.client_overhead_us;
            self.queue
                .push(self.now + overhead, Event::ClientWake { client });
        }
    }

    fn client_next_step(&mut self, client: usize) {
        // Client processing plus (optional) user think time before the
        // next navigation.
        let think = self.cfg.client.think_time_ms;
        let c = &mut self.clients[client];
        c.steps_left = c.steps_left.saturating_sub(1);
        let overhead = self.cfg.cost.client_overhead_us
            + if think > 0 {
                c.rng.gen_range(0..=2 * think) * 1_000
            } else {
                0
            };
        if c.steps_left == 0 || c.current_anchors.is_empty() {
            // Session over (walk length reached, or dead end).
            self.counters.sessions += 1;
            c.state = CState::NewSession;
            self.queue
                .push(self.now + overhead, Event::ClientWake { client });
            return;
        }
        let pick = c.rng.gen_range(0..c.current_anchors.len());
        let next = c.current_anchors[pick].clone();
        match Url::parse(&next) {
            Ok(u) => {
                c.current_url = Some(u);
                c.state = CState::IssueDoc;
                self.queue
                    .push(self.now + overhead, Event::ClientWake { client });
            }
            Err(_) => {
                // Unparseable link: end the session.
                self.counters.sessions += 1;
                c.state = CState::NewSession;
                self.queue
                    .push(self.now + overhead, Event::ClientWake { client });
            }
        }
    }

    fn client_deliver(&mut self, client: usize, token: u64, delivery: Delivery, _from: usize) {
        let is_doc = self.clients[client]
            .pending_doc
            .as_ref()
            .is_some_and(|(t, _)| *t == token);
        if is_doc {
            self.client_doc_response(client, token, delivery);
        } else if self.clients[client]
            .images_pending
            .iter()
            .any(|(t, _)| *t == token)
        {
            self.client_image_response(client, token, delivery);
        }
        // else: stale token (e.g. response after a crash reset) — drop.
    }

    fn client_doc_response(&mut self, client: usize, token: u64, delivery: Delivery) {
        let overhead = self.cfg.cost.client_overhead_us;
        let resp = match delivery {
            Delivery::Failed => {
                // Connection refused (crashed server): a real user gives up
                // on the link and re-enters through the front door, rather
                // than hammering a dead host. 503s, by contrast, get the
                // paper's exponential back-off retry.
                self.counters.failures += 1;
                let c = &mut self.clients[client];
                c.pending_doc = None;
                let pow = c.backoff_pow;
                c.backoff_pow = (c.backoff_pow + 1).min(self.cfg.client.max_backoff_pow);
                c.state = CState::NewSession;
                let delay = self.backoff_us(client, pow);
                self.queue
                    .push(self.now + delay, Event::ClientWake { client });
                return;
            }
            Delivery::Response(r) => r,
        };
        match resp.status {
            StatusCode::ServiceUnavailable => {
                self.counters.drops += 1;
                self.client_backoff_retry(client);
            }
            StatusCode::MovedPermanently => {
                self.counters.redirects += 1;
                if std::env::var("DCWS_TRACE_REDIR").is_ok() {
                    eprintln!(
                        "REDIR t={} client={} loc={:?}",
                        self.now / 1000,
                        client,
                        resp.headers.get("Location")
                    );
                }
                let c = &mut self.clients[client];
                let (_, pending) = c.pending_doc.as_mut().expect("doc response has pending");
                if pending.redirects_left == 0 {
                    // Redirect storm: give up on this step.
                    c.pending_doc = None;
                    c.state = CState::NextStep;
                    self.queue
                        .push(self.now + overhead, Event::ClientWake { client });
                    return;
                }
                pending.redirects_left -= 1;
                match resp.location() {
                    Some(loc) if loc.is_absolute() => {
                        pending.url = loc.clone();
                        let url = loc;
                        self.send_client_request(client, &url, token);
                    }
                    _ => {
                        self.clients[client].pending_doc = None;
                        self.clients[client].state = CState::NextStep;
                        self.queue
                            .push(self.now + overhead, Event::ClientWake { client });
                    }
                }
            }
            StatusCode::Ok => {
                self.counters.completed += 1;
                self.counters.bytes += resp.body.len() as u64;
                let c = &mut self.clients[client];
                c.backoff_pow = 0;
                let (_, pending) = c.pending_doc.take().expect("doc response has pending");
                let delta = self.now.saturating_sub(pending.issued_at);
                self.latency_us_sum += delta;
                self.latency_n += 1;
                self.latency.record_us(delta);
                let final_url = pending.url;
                let requested = c.current_url.clone().map(|u| u.to_string());
                let is_html = resp
                    .headers
                    .get("Content-Type")
                    .is_some_and(|ct| ct.starts_with("text/html"));
                if is_html {
                    let key = (final_url.to_string(), fnv1a(&resp.body));
                    let (anchors, embeds) = match self.parse_cache.get(&key) {
                        Some((a, e)) => (a.clone(), e.clone()),
                        None => {
                            let html = String::from_utf8_lossy(&resp.body);
                            let mut anchors = Vec::new();
                            let mut embeds = Vec::new();
                            for l in dcws_html::extract_links(&html) {
                                let Ok(abs) = final_url.join(&l.url) else {
                                    continue;
                                };
                                let s = abs.to_string();
                                match l.kind {
                                    dcws_html::LinkKind::Hyperlink => anchors.push(s),
                                    dcws_html::LinkKind::Embedded => embeds.push(s),
                                }
                            }
                            embeds.sort();
                            embeds.dedup();
                            self.parse_cache
                                .insert(key, (anchors.clone(), embeds.clone()));
                            (anchors, embeds)
                        }
                    };
                    let c = &mut self.clients[client];
                    let entry = CacheEntry::Html {
                        anchors: anchors.clone(),
                        embeds: embeds.clone(),
                    };
                    c.cache.insert(final_url.to_string(), entry.clone());
                    if let Some(req_key) = requested {
                        c.cache.insert(req_key, entry);
                    }
                    c.current_anchors = anchors;
                    let cache_enabled = self.cfg.client.cache_enabled;
                    c.images_queue = embeds
                        .into_iter()
                        .filter(|e| !cache_enabled || !c.cache.contains_key(e))
                        .collect();
                    c.state = CState::Images;
                    self.client_launch_images(client);
                } else {
                    // Opaque document (an image reached by hyperlink, the
                    // Sequoia pattern): dead end for the walk.
                    c.cache.insert(final_url.to_string(), CacheEntry::Other);
                    if let Some(req_key) = requested {
                        c.cache.insert(req_key, CacheEntry::Other);
                    }
                    c.current_anchors = Vec::new();
                    c.state = CState::NextStep;
                    self.queue
                        .push(self.now + overhead, Event::ClientWake { client });
                }
            }
            _ => {
                // 404/500 etc.: count as failure, end the step.
                self.counters.failures += 1;
                let c = &mut self.clients[client];
                c.pending_doc = None;
                c.state = CState::NextStep;
                self.queue
                    .push(self.now + overhead, Event::ClientWake { client });
            }
        }
    }

    fn client_backoff_retry(&mut self, client: usize) {
        // §5.2: "a client thread sleeps for a second at the first drop,
        // two at the second, four at the third, and so forth" — then
        // retries the same request.
        let c = &mut self.clients[client];
        c.pending_doc = None;
        let pow = c.backoff_pow;
        c.backoff_pow += 1;
        c.state = CState::IssueDoc;
        let delay = self.backoff_us(client, pow);
        self.queue
            .push(self.now + delay, Event::ClientWake { client });
    }

    fn client_image_response(&mut self, client: usize, token: u64, delivery: Delivery) {
        let resp = match delivery {
            Delivery::Failed => {
                // Connection refused: skip this image entirely.
                self.counters.failures += 1;
                let _ = self.clients[client].image_take(token);
                self.client_launch_images(client);
                return;
            }
            Delivery::Response(r) => r,
        };
        match resp.status {
            StatusCode::ServiceUnavailable => {
                self.counters.drops += 1;
                self.client_image_retry(client, token);
            }
            StatusCode::MovedPermanently => {
                self.counters.redirects += 1;
                if std::env::var("DCWS_TRACE_REDIR").is_ok() {
                    let from = self.clients[client]
                        .image_mut(token)
                        .map(|p| p.url.to_string());
                    eprintln!(
                        "IMG-REDIR t={} client={} from={:?} loc={:?}",
                        self.now / 1_000_000,
                        client,
                        from,
                        resp.headers.get("Location")
                    );
                }
                let c = &mut self.clients[client];
                let pending = c.image_mut(token).expect("image pending");
                if pending.redirects_left == 0 {
                    let _ = c.image_take(token);
                    self.client_launch_images(client);
                    return;
                }
                pending.redirects_left -= 1;
                match resp.location() {
                    Some(loc) if loc.is_absolute() => {
                        pending.url = loc.clone();
                        self.send_client_request(client, &loc, token);
                    }
                    _ => {
                        let _ = c.image_take(token);
                        self.client_launch_images(client);
                    }
                }
            }
            StatusCode::Ok => {
                self.counters.completed += 1;
                self.counters.bytes += resp.body.len() as u64;
                let c = &mut self.clients[client];
                c.backoff_pow = 0;
                if let Some(p) = c.image_take(token) {
                    let delta = self.now.saturating_sub(p.issued_at);
                    self.latency_us_sum += delta;
                    self.latency_n += 1;
                    self.latency.record_us(delta);
                    let c = &mut self.clients[client];
                    c.cache.insert(p.url.to_string(), CacheEntry::Other);
                }
                self.client_launch_images(client);
            }
            _ => {
                self.counters.failures += 1;
                let _ = self.clients[client].image_take(token);
                self.client_launch_images(client);
            }
        }
    }

    fn client_image_retry(&mut self, client: usize, token: u64) {
        // Push the image back on the queue; the helper slot frees up and a
        // back-off wake relaunches if nothing else is in flight.
        let c = &mut self.clients[client];
        if let Some(p) = c.image_take(token) {
            c.images_queue.push_back(p.url.to_string());
        }
        let pow = c.backoff_pow;
        c.backoff_pow += 1;
        if c.images_pending.is_empty() {
            let delay = self.backoff_us(client, pow);
            self.queue
                .push(self.now + delay, Event::ClientWake { client });
        }
    }

    // ---------------------------------------------------------------- metrics

    fn sample(&mut self) {
        let dt_s = self.cfg.sample_interval_ms as f64 / 1000.0;
        let d = Counters {
            completed: self.counters.completed - self.last_counters.completed,
            bytes: self.counters.bytes - self.last_counters.bytes,
            drops: self.counters.drops - self.last_counters.drops,
            redirects: self.counters.redirects - self.last_counters.redirects,
            failures: self.counters.failures - self.last_counters.failures,
            sessions: self.counters.sessions - self.last_counters.sessions,
        };
        self.last_counters = self.counters;
        let mut per_server_cps = Vec::with_capacity(self.servers.len());
        let mut migrations_total = 0;
        for (i, s) in self.servers.iter_mut().enumerate() {
            let served = s.engine.stats().served_total();
            per_server_cps.push((served - self.last_server_served[i]) as f64 / dt_s);
            self.last_server_served[i] = served;
            migrations_total += s.engine.stats().migrations;
            // Drain the bounded per-engine ring every sample so long runs
            // never overflow it between observations.
            self.engine_events
                .extend(s.engine.drain_events().into_iter().map(|r| (i, r)));
        }
        self.samples.push(Sample {
            t_ms: self.now / 1_000,
            cps: d.completed as f64 / dt_s,
            bps: d.bytes as f64 / dt_s,
            drops_per_sec: d.drops as f64 / dt_s,
            redirects_per_sec: d.redirects as f64 / dt_s,
            migrations_total,
            per_server_cps,
        });
        self.queue.push(
            self.now + self.cfg.sample_interval_ms * 1_000,
            Event::Sample,
        );
    }

    /// Total front-end 503 drops across servers (test/diagnostic access).
    pub fn total_server_drops(&self) -> u64 {
        self.servers.iter().map(|s| s.drops).sum()
    }

    // ------------------------------------------------------------------ audit

    /// Post-run ownership audit (the chaos-suite invariants, evaluated
    /// in-process). Probes mutate engine stats, so this runs only after
    /// [`SimCluster::collect`] has reduced the metrics.
    fn quiesce_audit(&mut self) -> OwnershipAudit {
        let now_ms = self.now / 1_000;
        let n = self.servers.len();
        let names: Vec<String> = self
            .cfg
            .dataset
            .docs
            .iter()
            .map(|d| d.name.clone())
            .collect();
        let mut lost = Vec::new();
        let mut multi_owner = Vec::new();
        // Replicated strategies have no ownership protocol to audit: every
        // server holds a full copy by construction.
        if !self.cfg.strategy.replicated() {
            for name in &names {
                // Single owner: exactly one live LDG claims the name (the
                // plain URL is always answered — directly or via 301 — by
                // the one server whose LDG holds it).
                let claimants = (0..n)
                    .filter(|&i| {
                        !self.servers[i].crashed && self.servers[i].engine.ldg().contains(name)
                    })
                    .count();
                if claimants > 1 {
                    multi_owner.push(name.clone());
                }
                if !self.doc_reachable(name, now_ms) {
                    lost.push(name.clone());
                }
            }
        }
        // GLT convergence: no live server considers another live server
        // stale once the pinger has had a few periods to re-hear everyone.
        let window_ms = 6 * self
            .server_config
            .pinger_interval_ms
            .max(self.server_config.stat_interval_ms);
        let live: Vec<bool> = self.servers.iter().map(|s| !s.crashed).collect();
        let mut glt_stale = Vec::new();
        for i in 0..n {
            if !live[i] {
                continue;
            }
            let has_stale_live_peer = self.servers[i]
                .engine
                .glt()
                .stale_peers(now_ms, window_ms)
                .into_iter()
                .any(|p| self.id_to_idx.get(&p).is_some_and(|&j| live[j]));
            if has_stale_live_peer {
                glt_stale.push(i);
            }
        }
        OwnershipAudit {
            docs: names.len(),
            lost,
            multi_owner,
            glt_stale,
        }
    }

    /// Follow the 301 chain for `name` from its home (server 0); true if a
    /// live server answers 200, or a lazy-pull `FetchNeeded` whose home is
    /// alive (the copy is one pull away — not lost).
    fn doc_reachable(&mut self, name: &str, now_ms: u64) -> bool {
        let mut target = 0usize;
        let mut path = name.to_string();
        for _ in 0..8 {
            if self.servers[target].crashed {
                return false;
            }
            let req = Request::get(&path);
            match self.servers[target].engine.handle_request(&req, now_ms) {
                Outcome::FetchNeeded { home, .. } => {
                    return self
                        .id_to_idx
                        .get(&home)
                        .is_some_and(|&h| !self.servers[h].crashed);
                }
                out => {
                    let Some(resp) = out.into_response() else {
                        return false;
                    };
                    match resp.status {
                        StatusCode::Ok => return true,
                        StatusCode::MovedPermanently => {
                            let Some(loc) = resp.location() else {
                                return false;
                            };
                            let Some(idx) =
                                loc.host().and_then(|h| self.host_to_idx(h, loc.port()))
                            else {
                                return false;
                            };
                            target = idx;
                            path = loc.path().to_string();
                        }
                        _ => return false,
                    }
                }
            }
        }
        false
    }
}

/// What [`SimCluster::run_audited`] found at quiesce: the chaos-suite
/// invariants (no document lost, a single owner per name) plus GLT
/// convergence, checked across the surviving servers.
#[derive(Debug, Clone)]
pub struct OwnershipAudit {
    /// Documents in the dataset.
    pub docs: usize,
    /// Names no live server can produce (200 or recoverable pull) within a
    /// bounded redirect chain from the home.
    pub lost: Vec<String>,
    /// Names claimed by more than one live server's LDG.
    pub multi_owner: Vec<String>,
    /// Live servers whose GLT still lists another *live* server as stale.
    pub glt_stale: Vec<usize>,
}

impl OwnershipAudit {
    /// All invariants hold.
    pub fn clean(&self) -> bool {
        self.lost.is_empty() && self.multi_owner.is_empty() && self.glt_stale.is_empty()
    }
}

/// Run one simulation to completion.
pub fn run_sim(cfg: SimConfig) -> SimResult {
    SimCluster::new(cfg).run()
}
