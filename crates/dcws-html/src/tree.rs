//! The "simple parse tree" of §4.3.
//!
//! DCWS only needs the tree for structural queries (frame templates, link
//! context); hyperlink rewriting operates on the token stream directly for
//! speed. The tree is built with HTML's void-element rules and tolerates
//! misnested end tags the way 1990s browsers did: an unmatched end tag is
//! dropped, a mismatched one closes intermediate elements.

use crate::token::{Tag, Token};
use crate::tokenizer::tokenize;

/// Elements that never have children or end tags.
const VOID_ELEMENTS: &[&str] = &[
    "area", "base", "basefont", "br", "col", "embed", "frame", "hr", "img", "input", "isindex",
    "link", "meta", "param", "source", "track", "wbr",
];

/// Whether `name` is an HTML void element.
pub fn is_void_element(name: &str) -> bool {
    VOID_ELEMENTS.contains(&name)
}

/// A node in the parse tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Node {
    /// An element with its start tag and children.
    Element {
        /// The start tag, including attributes.
        tag: Tag,
        /// Child nodes in document order.
        children: Vec<Node>,
    },
    /// Character data.
    Text(String),
    /// A comment (raw, with delimiters).
    Comment(String),
    /// A declaration or processing instruction (raw).
    Decl(String),
}

impl Node {
    /// Element name, if this is an element.
    pub fn name(&self) -> Option<&str> {
        match self {
            Node::Element { tag, .. } => Some(&tag.name),
            _ => None,
        }
    }

    /// Attribute lookup on an element.
    pub fn attr(&self, name: &str) -> Option<&str> {
        match self {
            Node::Element { tag, .. } => tag.attr(name),
            _ => None,
        }
    }

    /// Children slice (empty for non-elements).
    pub fn children(&self) -> &[Node] {
        match self {
            Node::Element { children, .. } => children,
            _ => &[],
        }
    }

    /// Depth-first pre-order walk.
    pub fn walk<'a>(&'a self, f: &mut impl FnMut(&'a Node)) {
        f(self);
        for c in self.children() {
            c.walk(f);
        }
    }

    /// Concatenated text content of this subtree.
    pub fn text_content(&self) -> String {
        let mut out = String::new();
        self.walk(&mut |n| {
            if let Node::Text(t) = n {
                out.push_str(t);
            }
        });
        out
    }
}

/// A parsed document: a forest of top-level nodes.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Document {
    /// Top-level nodes.
    pub nodes: Vec<Node>,
}

impl Document {
    /// All elements named `name` (lowercase), document order.
    pub fn elements<'a>(&'a self, name: &'a str) -> Vec<&'a Node> {
        let mut out = Vec::new();
        for n in &self.nodes {
            n.walk(&mut |m| {
                if m.name() == Some(name) {
                    out.push(m);
                }
            });
        }
        out
    }

    /// Total number of element nodes.
    pub fn element_count(&self) -> usize {
        let mut n = 0;
        for node in &self.nodes {
            node.walk(&mut |m| {
                if matches!(m, Node::Element { .. }) {
                    n += 1;
                }
            });
        }
        n
    }
}

/// Parse HTML source into a tree.
pub fn parse_tree(input: &str) -> Document {
    // Stack frame: (tag, children accumulated so far).
    let mut stack: Vec<(Tag, Vec<Node>)> = Vec::new();
    let mut top: Vec<Node> = Vec::new();

    fn push(stack: &mut [(Tag, Vec<Node>)], top: &mut Vec<Node>, node: Node) {
        match stack.last_mut() {
            Some((_, children)) => children.push(node),
            None => top.push(node),
        }
    }

    for token in tokenize(input) {
        match token {
            Token::Text(t) => push(&mut stack, &mut top, Node::Text(t)),
            Token::Comment(c) => push(&mut stack, &mut top, Node::Comment(c)),
            Token::Decl(d) => push(&mut stack, &mut top, Node::Decl(d)),
            Token::Tag(tag) if !tag.is_end => {
                if tag.self_closing || is_void_element(&tag.name) {
                    push(
                        &mut stack,
                        &mut top,
                        Node::Element {
                            tag,
                            children: Vec::new(),
                        },
                    );
                } else {
                    stack.push((tag, Vec::new()));
                }
            }
            Token::Tag(end) => {
                // Find the innermost open element with this name; an
                // unmatched end tag is dropped, like browsers do.
                if let Some(idx) = stack.iter().rposition(|(t, _)| t.name == end.name) {
                    // Close everything above it implicitly, then it.
                    while stack.len() > idx + 1 {
                        let (tag, children) = stack.pop().expect("len checked");
                        push(&mut stack, &mut top, Node::Element { tag, children });
                    }
                    let (tag, children) = stack.pop().expect("idx in range");
                    push(&mut stack, &mut top, Node::Element { tag, children });
                }
            }
        }
    }
    // EOF closes whatever is still open.
    while let Some((tag, children)) = stack.pop() {
        push(&mut stack, &mut top, Node::Element { tag, children });
    }
    Document { nodes: top }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nested_structure() {
        let d = parse_tree("<html><body><p>hi</p></body></html>");
        assert_eq!(d.nodes.len(), 1);
        let html = &d.nodes[0];
        assert_eq!(html.name(), Some("html"));
        let body = &html.children()[0];
        assert_eq!(body.name(), Some("body"));
        let p = &body.children()[0];
        assert_eq!(p.name(), Some("p"));
        assert_eq!(p.text_content(), "hi");
    }

    #[test]
    fn void_elements_do_not_nest() {
        let d = parse_tree("<p><img src=a.gif><br>text</p>");
        let p = &d.nodes[0];
        assert_eq!(p.children().len(), 3);
        assert_eq!(p.children()[0].name(), Some("img"));
        assert_eq!(p.children()[1].name(), Some("br"));
        assert!(matches!(&p.children()[2], Node::Text(t) if t == "text"));
    }

    #[test]
    fn self_closing_does_not_nest() {
        let d = parse_tree("<x/><y>in</y>");
        assert_eq!(d.nodes.len(), 2);
        assert!(d.nodes[0].children().is_empty());
    }

    #[test]
    fn unmatched_end_tag_dropped() {
        let d = parse_tree("a</div>b");
        assert_eq!(d.nodes.len(), 2);
        assert!(matches!(&d.nodes[0], Node::Text(t) if t == "a"));
        assert!(matches!(&d.nodes[1], Node::Text(t) if t == "b"));
    }

    #[test]
    fn misnested_closes_intermediates() {
        // <b> is implicitly closed when </div> arrives.
        let d = parse_tree("<div><b>bold</div>after");
        let div = &d.nodes[0];
        assert_eq!(div.name(), Some("div"));
        let b = &div.children()[0];
        assert_eq!(b.name(), Some("b"));
        assert_eq!(b.text_content(), "bold");
        assert!(matches!(&d.nodes[1], Node::Text(t) if t == "after"));
    }

    #[test]
    fn eof_closes_open_elements() {
        let d = parse_tree("<html><body>unclosed");
        assert_eq!(d.nodes.len(), 1);
        assert_eq!(d.nodes[0].name(), Some("html"));
    }

    #[test]
    fn elements_query() {
        let d = parse_tree("<body><a href=1></a><div><a href=2></a></div></body>");
        let anchors = d.elements("a");
        assert_eq!(anchors.len(), 2);
        assert_eq!(anchors[0].attr("href"), Some("1"));
        assert_eq!(anchors[1].attr("href"), Some("2"));
    }

    #[test]
    fn frameset_tree() {
        let d = parse_tree(
            r#"<frameset rows="10%,90%"><frame src="/top.html"><frame src="/main.html"></frameset>"#,
        );
        let frames = d.elements("frame");
        assert_eq!(frames.len(), 2);
        assert_eq!(d.nodes[0].children().len(), 2);
    }

    #[test]
    fn element_count() {
        let d = parse_tree("<a><b></b></a><c></c>");
        assert_eq!(d.element_count(), 3);
    }

    #[test]
    fn comments_and_decls_in_tree() {
        let d = parse_tree("<!DOCTYPE html><!-- c --><p>x</p>");
        assert!(matches!(&d.nodes[0], Node::Decl(_)));
        assert!(matches!(&d.nodes[1], Node::Comment(_)));
        assert_eq!(d.nodes[2].name(), Some("p"));
    }
}
