//! In-place hyperlink rewriting — the heart of DCWS document
//! reconstruction (§4.3).
//!
//! When a document's `Dirty` bit is set (one of its `LinkTo` targets
//! migrated), the server re-parses the source, substitutes the affected
//! URLs, and writes the regenerated document back. [`rewrite_links`] does
//! the parse → substitute → serialize pipeline in one call; tags whose
//! attributes didn't change are emitted from their original source bytes,
//! so a no-op rewrite returns the document unchanged, byte for byte.

use crate::links::classify;
use crate::token::Token;
use crate::tokenizer::tokenize;

/// Rewrite every recognized URL-bearing attribute with `map`.
///
/// `map` receives the raw attribute value and returns `Some(new)` to
/// substitute or `None` to leave it alone. Returns the regenerated document
/// and the number of substitutions performed.
pub fn rewrite_links(html: &str, mut map: impl FnMut(&str) -> Option<String>) -> (String, usize) {
    let mut tokens = tokenize(html);
    let mut replaced = 0;
    for token in &mut tokens {
        let Token::Tag(tag) = token else { continue };
        if tag.is_end {
            continue;
        }
        // Collect (index, new value) first to appease the borrow checker.
        let mut updates: Vec<(usize, String)> = Vec::new();
        for (i, attr) in tag.attrs.iter().enumerate() {
            if classify(&tag.name, &attr.name).is_none() {
                continue;
            }
            let Some(value) = attr.value.as_deref() else {
                continue;
            };
            if let Some(new) = map(value) {
                if new != value {
                    updates.push((i, new));
                }
            }
        }
        for (i, new) in updates {
            tag.attrs[i].value = Some(new);
            tag.modified = true;
            replaced += 1;
        }
    }
    (crate::serialize(&tokens), replaced)
}

#[cfg(test)]
mod tests {
    use super::*;

    const DOC: &str = r#"<html><body>
<a href="/d.html">doc D</a>
<a href="/e.html">doc E</a>
<img src="/btn.gif">
<p>unrelated <b>text</b> with /d.html inline</p>
</body></html>"#;

    #[test]
    fn rewrites_only_matching_urls() {
        let (out, n) = rewrite_links(DOC, |u| {
            (u == "/d.html").then(|| "http://coop:8001/~migrate/home/80/d.html".into())
        });
        assert_eq!(n, 1);
        assert!(out.contains(r#"href="http://coop:8001/~migrate/home/80/d.html""#));
        assert!(out.contains(r#"href="/e.html""#), "other links untouched");
        assert!(
            out.contains("with /d.html inline"),
            "text content untouched"
        );
    }

    #[test]
    fn noop_rewrite_is_byte_identical() {
        let (out, n) = rewrite_links(DOC, |_| None);
        assert_eq!(n, 0);
        assert_eq!(out, DOC);
    }

    #[test]
    fn identity_mapping_counts_zero() {
        // Returning the same string must not dirty the tag.
        let (out, n) = rewrite_links(DOC, |u| Some(u.to_string()));
        assert_eq!(n, 0);
        assert_eq!(out, DOC);
    }

    #[test]
    fn rewrites_images() {
        let (out, n) = rewrite_links(DOC, |u| {
            u.ends_with(".gif")
                .then(|| format!("http://coop:9/{}", &u[1..]))
        });
        assert_eq!(n, 1);
        assert!(out.contains(r#"src="http://coop:9/btn.gif""#));
    }

    #[test]
    fn rewrite_back_restores_structure() {
        // Migrate then revoke: rewriting back yields the semantic original.
        let (migrated, _) = rewrite_links(DOC, |u| {
            (u == "/d.html").then(|| "http://coop:8001/~migrate/h/80/d.html".into())
        });
        let (restored, n) = rewrite_links(&migrated, |u| {
            (u == "http://coop:8001/~migrate/h/80/d.html").then(|| "/d.html".into())
        });
        assert_eq!(n, 1);
        assert_eq!(restored, DOC);
    }

    #[test]
    fn multiple_attrs_one_tag() {
        let html = r#"<a href="/x"><img src="/x"></a>"#;
        let (out, n) = rewrite_links(html, |_| Some("/y".into()));
        assert_eq!(n, 2);
        assert_eq!(out, r#"<a href="/y"><img src="/y"></a>"#);
    }

    #[test]
    fn preserves_quote_style_on_rewrite() {
        let html = "<a href='/x'>t</a>";
        let (out, _) = rewrite_links(html, |_| Some("/y".into()));
        assert_eq!(out, "<a href='/y'>t</a>");
    }

    #[test]
    fn unquoted_rewrite_keeps_unquoted() {
        let html = "<img src=/x.gif>";
        let (out, _) = rewrite_links(html, |_| Some("/y.gif".into()));
        assert_eq!(out, "<img src=/y.gif>");
    }

    #[test]
    fn non_url_attrs_never_passed_to_map() {
        let html = r#"<a href="/x" class="big" onclick="go()">t</a>"#;
        let mut seen = Vec::new();
        rewrite_links(html, |u| {
            seen.push(u.to_string());
            None
        });
        assert_eq!(seen, ["/x"]);
    }

    #[test]
    fn malformed_html_survives_rewrite() {
        let html = "before <a href=\"/x\">ok</a> <b>unclosed <a href=";
        let (out, n) = rewrite_links(html, |_| Some("/y".into()));
        assert_eq!(n, 1);
        assert!(out.contains("href=\"/y\""));
        assert!(out.ends_with("<a href="), "trailing junk preserved");
    }
}
