//! A forgiving, source-preserving HTML tokenizer.
//!
//! Design constraints, in order:
//!
//! 1. **Never lose bytes.** Every input byte lands in exactly one token's
//!    raw text, so `serialize(tokenize(doc)) == doc`. Malformed markup
//!    (stray `<`, unterminated tags) degrades to text rather than erroring —
//!    real 1998-era web pages are full of it.
//! 2. **Good enough structure for link rewriting.** Attribute values with
//!    all three quoting styles, self-closing tags, comments, declarations,
//!    and raw-text elements (`<script>`, `<style>`, …) are recognized.
//! 3. **Single pass, no backtracking** beyond one saved index, because the
//!    paper budgets ~3 ms to parse a 6.5 KB document on 1999 hardware and
//!    we benchmark this path.

use crate::token::{Attr, Quote, Tag, Token};

/// Elements whose content is raw text up to the matching end tag.
const RAW_TEXT_ELEMENTS: &[&str] = &["script", "style", "textarea", "xmp"];

/// Tokenize an HTML document.
pub fn tokenize(input: &str) -> Vec<Token> {
    let bytes = input.as_bytes();
    let mut tokens = Vec::new();
    let mut pos = 0;
    // Pending text start: text accumulates until a structural token begins.
    let mut text_start = 0;

    macro_rules! flush_text {
        ($upto:expr) => {
            if text_start < $upto {
                tokens.push(Token::Text(input[text_start..$upto].to_string()));
            }
        };
    }

    while pos < bytes.len() {
        if bytes[pos] != b'<' {
            pos += 1;
            continue;
        }
        // A '<' — decide what it opens.
        let rest = &bytes[pos + 1..];
        if rest.starts_with(b"!--") {
            flush_text!(pos);
            let end = find_sub(bytes, b"-->", pos + 4)
                .map(|i| i + 3)
                .unwrap_or(bytes.len());
            tokens.push(Token::Comment(input[pos..end].to_string()));
            pos = end;
            text_start = pos;
        } else if rest.first().is_some_and(|&b| b == b'!' || b == b'?') {
            flush_text!(pos);
            let end = find_byte(bytes, b'>', pos + 1)
                .map(|i| i + 1)
                .unwrap_or(bytes.len());
            tokens.push(Token::Decl(input[pos..end].to_string()));
            pos = end;
            text_start = pos;
        } else if rest.first().is_some_and(|&b| b == b'/') {
            // End tag.
            match parse_end_tag(input, pos) {
                Some((tag, end)) => {
                    flush_text!(pos);
                    tokens.push(Token::Tag(tag));
                    pos = end;
                    text_start = pos;
                }
                None => pos += 1, // stray "</" — stays text
            }
        } else if rest.first().is_some_and(|b| b.is_ascii_alphabetic()) {
            match parse_start_tag(input, pos) {
                Some((tag, end)) => {
                    flush_text!(pos);
                    let raw_text =
                        RAW_TEXT_ELEMENTS.contains(&tag.name.as_str()) && !tag.self_closing;
                    let name = tag.name.clone();
                    tokens.push(Token::Tag(tag));
                    pos = end;
                    text_start = pos;
                    if raw_text {
                        // Content up to `</name` is raw text.
                        let close = find_close_tag(input, pos, &name).unwrap_or(bytes.len());
                        if close > pos {
                            tokens.push(Token::Text(input[pos..close].to_string()));
                        }
                        pos = close;
                        text_start = pos;
                    }
                }
                None => pos += 1, // unterminated tag — stays text
            }
        } else {
            pos += 1; // literal '<' in text
        }
    }
    flush_text!(bytes.len());
    tokens
}

fn find_byte(bytes: &[u8], needle: u8, from: usize) -> Option<usize> {
    bytes[from.min(bytes.len())..]
        .iter()
        .position(|&b| b == needle)
        .map(|i| i + from)
}

fn find_sub(bytes: &[u8], needle: &[u8], from: usize) -> Option<usize> {
    if from >= bytes.len() {
        return None;
    }
    bytes[from..]
        .windows(needle.len())
        .position(|w| w == needle)
        .map(|i| i + from)
}

/// Find `</name` (case-insensitive) at or after `from`.
fn find_close_tag(input: &str, from: usize, name: &str) -> Option<usize> {
    let bytes = input.as_bytes();
    let mut i = from;
    while let Some(lt) = find_byte(bytes, b'<', i) {
        if bytes.get(lt + 1) == Some(&b'/') {
            let after = &input[lt + 2..];
            if after.len() >= name.len() && after[..name.len()].eq_ignore_ascii_case(name) {
                let nb = after.as_bytes().get(name.len());
                if nb.is_none_or(|&b| b.is_ascii_whitespace() || b == b'>') {
                    return Some(lt);
                }
            }
        }
        i = lt + 1;
    }
    None
}

/// Parse `</name ...>` starting at `lt`; returns the tag and end offset.
fn parse_end_tag(input: &str, lt: usize) -> Option<(Tag, usize)> {
    let bytes = input.as_bytes();
    let name_start = lt + 2;
    let mut i = name_start;
    while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || matches!(bytes[i], b'-' | b':')) {
        i += 1;
    }
    if i == name_start {
        return None;
    }
    let raw_name = &input[name_start..i];
    let gt = find_byte(bytes, b'>', i)?;
    let end = gt + 1;
    Some((
        Tag {
            raw: input[lt..end].to_string(),
            raw_name: raw_name.to_string(),
            name: raw_name.to_ascii_lowercase(),
            is_end: true,
            self_closing: false,
            attrs: Vec::new(),
            modified: false,
        },
        end,
    ))
}

/// Parse `<name attrs...>` starting at `lt`; returns the tag and end offset.
/// Honors quotes (a `>` inside a quoted value does not end the tag).
fn parse_start_tag(input: &str, lt: usize) -> Option<(Tag, usize)> {
    let bytes = input.as_bytes();
    let name_start = lt + 1;
    let mut i = name_start;
    while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || matches!(bytes[i], b'-' | b':')) {
        i += 1;
    }
    let raw_name = &input[name_start..i];
    let mut attrs = Vec::new();
    let mut self_closing = false;

    loop {
        // Skip whitespace.
        while i < bytes.len() && bytes[i].is_ascii_whitespace() {
            i += 1;
        }
        if i >= bytes.len() {
            return None; // unterminated tag
        }
        match bytes[i] {
            b'>' => {
                let end = i + 1;
                return Some((
                    Tag {
                        raw: input[lt..end].to_string(),
                        raw_name: raw_name.to_string(),
                        name: raw_name.to_ascii_lowercase(),
                        is_end: false,
                        self_closing,
                        attrs,
                        modified: false,
                    },
                    end,
                ));
            }
            b'/' => {
                if bytes.get(i + 1) == Some(&b'>') {
                    self_closing = true;
                }
                i += 1;
            }
            _ => {
                // Attribute name.
                let an_start = i;
                while i < bytes.len()
                    && !bytes[i].is_ascii_whitespace()
                    && !matches!(bytes[i], b'=' | b'>' | b'/')
                {
                    i += 1;
                }
                if i == an_start {
                    i += 1; // junk byte; skip
                    continue;
                }
                let raw_attr_name = &input[an_start..i];
                // Optional "= value".
                let mut j = i;
                while j < bytes.len() && bytes[j].is_ascii_whitespace() {
                    j += 1;
                }
                let (value, quote) = if bytes.get(j) == Some(&b'=') {
                    j += 1;
                    while j < bytes.len() && bytes[j].is_ascii_whitespace() {
                        j += 1;
                    }
                    match bytes.get(j) {
                        Some(&q @ (b'"' | b'\'')) => {
                            let v_start = j + 1;
                            let v_end = find_byte(bytes, q, v_start)?;
                            i = v_end + 1;
                            (
                                Some(input[v_start..v_end].to_string()),
                                if q == b'"' {
                                    Quote::Double
                                } else {
                                    Quote::Single
                                },
                            )
                        }
                        Some(_) => {
                            let v_start = j;
                            let mut k = j;
                            while k < bytes.len()
                                && !bytes[k].is_ascii_whitespace()
                                && bytes[k] != b'>'
                            {
                                k += 1;
                            }
                            i = k;
                            (Some(input[v_start..k].to_string()), Quote::None)
                        }
                        None => return None,
                    }
                } else {
                    (None, Quote::None)
                };
                attrs.push(Attr {
                    name: raw_attr_name.to_ascii_lowercase(),
                    raw_name: raw_attr_name.to_string(),
                    value,
                    quote,
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::serialize;

    fn roundtrip(doc: &str) {
        assert_eq!(
            serialize(&tokenize(doc)),
            doc,
            "round-trip failed for {doc:?}"
        );
    }

    fn tags(doc: &str) -> Vec<Tag> {
        tokenize(doc)
            .into_iter()
            .filter_map(|t| match t {
                Token::Tag(t) => Some(t),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn plain_text() {
        let toks = tokenize("hello world");
        assert_eq!(toks, vec![Token::Text("hello world".into())]);
    }

    #[test]
    fn simple_tag_with_attrs() {
        let t = &tags(r#"<a href="/x.html" class=big>"#)[0];
        assert_eq!(t.name, "a");
        assert_eq!(t.attr("href"), Some("/x.html"));
        assert_eq!(t.attr("class"), Some("big"));
        assert!(!t.is_end);
    }

    #[test]
    fn attr_quote_styles() {
        let t = &tags(r#"<img src='/a.gif' alt=photo title="x y">"#)[0];
        assert_eq!(t.attrs[0].quote, Quote::Single);
        assert_eq!(t.attrs[1].quote, Quote::None);
        assert_eq!(t.attrs[2].quote, Quote::Double);
        assert_eq!(t.attr("title"), Some("x y"));
    }

    #[test]
    fn gt_inside_quoted_value() {
        let t = &tags(r#"<a href="/x?a>b">text</a>"#)[0];
        assert_eq!(t.attr("href"), Some("/x?a>b"));
        roundtrip(r#"<a href="/x?a>b">text</a>"#);
    }

    #[test]
    fn boolean_attribute() {
        let t = &tags("<input checked type=checkbox>")[0];
        assert_eq!(t.attrs[0].name, "checked");
        assert_eq!(t.attrs[0].value, None);
    }

    #[test]
    fn end_tag() {
        let ts = tags("<a></a>");
        assert!(!ts[0].is_end);
        assert!(ts[1].is_end);
        assert_eq!(ts[1].name, "a");
    }

    #[test]
    fn self_closing() {
        let t = &tags("<br/>")[0];
        assert!(t.self_closing);
        let t = &tags("<img src=x />")[0];
        assert!(t.self_closing);
        assert_eq!(t.attr("src"), Some("x"));
    }

    #[test]
    fn comments_and_doctype() {
        let toks = tokenize("<!DOCTYPE html><!-- a <b> comment --><p>");
        assert!(matches!(&toks[0], Token::Decl(d) if d == "<!DOCTYPE html>"));
        assert!(matches!(&toks[1], Token::Comment(c) if c.contains("<b>")));
        assert!(matches!(&toks[2], Token::Tag(t) if t.name == "p"));
    }

    #[test]
    fn unterminated_comment_swallows_rest() {
        let toks = tokenize("a<!-- open");
        assert_eq!(toks.len(), 2);
        assert!(matches!(&toks[1], Token::Comment(c) if c == "<!-- open"));
        roundtrip("a<!-- open");
    }

    #[test]
    fn stray_lt_is_text() {
        roundtrip("if a < b then");
        let toks = tokenize("if a < b then");
        assert!(toks.iter().all(|t| matches!(t, Token::Text(_))));
    }

    #[test]
    fn unterminated_tag_is_text() {
        roundtrip("before <a href=");
        let toks = tokenize("before <a href=");
        assert!(toks.iter().all(|t| matches!(t, Token::Text(_))));
    }

    #[test]
    fn script_content_is_raw() {
        let doc = r#"<script>if (a<b && c>d) { x="</div>"; }</script>"#;
        // NOTE: real HTML would end the script at the quoted "</div>" too —
        // but ours requires a matching name, so it survives.
        let toks = tokenize(doc);
        let names: Vec<_> = toks
            .iter()
            .filter_map(|t| t.as_tag().map(|t| (t.name.clone(), t.is_end)))
            .collect();
        assert_eq!(
            names,
            vec![("script".into(), false), ("script".into(), true)]
        );
        roundtrip(doc);
    }

    #[test]
    fn style_content_is_raw() {
        let doc = "<style>a > b { color: red }</style>";
        let toks = tokenize(doc);
        assert_eq!(toks.len(), 3);
        roundtrip(doc);
    }

    #[test]
    fn unclosed_script_swallows_rest() {
        let doc = "<script>var x = 1;";
        let toks = tokenize(doc);
        assert_eq!(toks.len(), 2);
        roundtrip(doc);
    }

    #[test]
    fn case_preserved_in_raw() {
        roundtrip("<A HREF='/X.HTML'>Link</A>");
        let ts = tags("<A HREF='/X.HTML'>Link</A>");
        assert_eq!(ts[0].name, "a");
        assert_eq!(ts[0].raw_name, "A");
        assert_eq!(ts[0].attr("href"), Some("/X.HTML"));
    }

    #[test]
    fn frames_parse() {
        let doc = r#"<frameset cols="20%,80%"><frame src="/menu.html"><frame src="/body.html"></frameset>"#;
        let ts = tags(doc);
        assert_eq!(ts[1].attr("src"), Some("/menu.html"));
        roundtrip(doc);
    }

    #[test]
    fn whitespace_inside_tag_preserved_via_raw() {
        roundtrip("<a   href = \"/x\"  >t</a >");
    }

    #[test]
    fn processing_instruction() {
        roundtrip("<?xml version=\"1.0\"?><p>");
    }

    #[test]
    fn empty_input() {
        assert!(tokenize("").is_empty());
    }

    #[test]
    fn realistic_document_roundtrip() {
        let doc = r##"<!DOCTYPE HTML PUBLIC "-//W3C//DTD HTML 3.2//EN">
<html><head><title>MAPUG Archive - Message 42</title></head>
<body bgcolor="#ffffff">
<h1>Re: Telescope eyepieces</h1>
<a href="msg041.html"><img src="/buttons/prev.gif" alt="Previous"></a>
<a href="msg043.html"><img src="/buttons/next.gif" alt="Next"></a>
<a href="/index.html"><img src='/buttons/index.gif'></a>
<pre>Message body text with a < b comparisons and &amp; entities.</pre>
<!-- footer -->
</body></html>"##;
        roundtrip(doc);
        let n_links = tags(doc)
            .iter()
            .filter(|t| t.attr("href").is_some() || t.attr("src").is_some())
            .count();
        assert_eq!(n_links, 6);
    }
}
