//! Hyperlink and embedded-reference extraction.
//!
//! The DCWS system distinguishes two reference classes because they behave
//! differently under load (§3.1):
//!
//! * **Hyperlinks** (`a href`, `area href`, `frame src`, …) — followed by a
//!   user action; these form the edges of the document graph that Algorithm
//!   1 reasons about.
//! * **Embedded** references (`img src`, `body background`, …) — fetched
//!   automatically with the page; their URLs are "seldom published", which
//!   is what makes images prime migration candidates (and, when shared by
//!   every page, the hot spots that cap SBLog/MAPUG scalability in Fig. 7).

use crate::token::Tag;
use crate::tokenizer::tokenize;

/// How a referenced URL is consumed by a browser.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LinkKind {
    /// Followed on user action (graph edge).
    Hyperlink,
    /// Fetched automatically with the document (images etc.).
    Embedded,
}

/// One extracted reference.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LinkRef {
    /// The raw URL text from the attribute (not resolved).
    pub url: String,
    /// Reference class.
    pub kind: LinkKind,
    /// Lowercased element name the reference came from.
    pub tag: String,
    /// Lowercased attribute name that held the URL.
    pub attr: String,
}

/// `(tag, attr, kind)` table of URL-bearing attributes we recognize.
///
/// `frame`/`iframe` sources are classed as embedded: the browser fetches
/// them automatically with the frame template (§3.1's frame discussion).
const URL_ATTRS: &[(&str, &str, LinkKind)] = &[
    ("a", "href", LinkKind::Hyperlink),
    ("area", "href", LinkKind::Hyperlink),
    ("link", "href", LinkKind::Embedded),
    ("img", "src", LinkKind::Embedded),
    ("frame", "src", LinkKind::Embedded),
    ("iframe", "src", LinkKind::Embedded),
    ("script", "src", LinkKind::Embedded),
    ("body", "background", LinkKind::Embedded),
    ("input", "src", LinkKind::Embedded),
    ("embed", "src", LinkKind::Embedded),
];

/// Whether `tag.attrs[attr]` is a URL-bearing attribute, and its class.
pub fn classify(tag: &str, attr: &str) -> Option<LinkKind> {
    URL_ATTRS
        .iter()
        .find(|(t, a, _)| *t == tag && *a == attr)
        .map(|(_, _, k)| *k)
}

fn links_of_tag(tag: &Tag, out: &mut Vec<LinkRef>) {
    if tag.is_end {
        return;
    }
    for (t, a, kind) in URL_ATTRS {
        if tag.name == *t {
            if let Some(url) = tag.attr(a) {
                if !url.is_empty() && !is_non_http(url) {
                    out.push(LinkRef {
                        url: url.to_string(),
                        kind: *kind,
                        tag: tag.name.clone(),
                        attr: (*a).to_string(),
                    });
                }
            }
        }
    }
}

/// URLs DCWS can never serve or rewrite (mail, anchors-only, other schemes).
fn is_non_http(url: &str) -> bool {
    url.starts_with('#')
        || url.starts_with("mailto:")
        || url.starts_with("ftp:")
        || url.starts_with("news:")
        || url.starts_with("javascript:")
        || url.starts_with("https://") // 1998 DCWS speaks plain http
}

/// Extract every recognized reference from an HTML document, in document
/// order. Duplicate URLs are preserved (hit accounting needs them).
pub fn extract_links(html: &str) -> Vec<LinkRef> {
    let mut out = Vec::new();
    for token in tokenize(html) {
        if let Some(tag) = token.as_tag() {
            links_of_tag(tag, &mut out);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn anchors_are_hyperlinks() {
        let l = extract_links(r#"<a href="/next.html">next</a>"#);
        assert_eq!(l.len(), 1);
        assert_eq!(l[0].kind, LinkKind::Hyperlink);
        assert_eq!(l[0].url, "/next.html");
        assert_eq!(l[0].tag, "a");
        assert_eq!(l[0].attr, "href");
    }

    #[test]
    fn images_are_embedded() {
        let l = extract_links(r#"<img src="/buttons/next.gif" alt=next>"#);
        assert_eq!(l[0].kind, LinkKind::Embedded);
    }

    #[test]
    fn frames_are_embedded() {
        let l = extract_links(r#"<frameset><frame src="/menu.html"></frameset>"#);
        assert_eq!(l.len(), 1);
        assert_eq!(l[0].kind, LinkKind::Embedded);
        assert_eq!(l[0].tag, "frame");
    }

    #[test]
    fn document_order_and_duplicates() {
        let html = r#"<a href="/a"></a><img src="/i.gif"><a href="/a"></a>"#;
        let l = extract_links(html);
        assert_eq!(l.len(), 3);
        assert_eq!(l[0].url, "/a");
        assert_eq!(l[1].url, "/i.gif");
        assert_eq!(l[2].url, "/a");
    }

    #[test]
    fn non_http_schemes_skipped() {
        let html = r##"<a href="mailto:x@y"></a><a href="#frag"></a>
                      <a href="javascript:void(0)"></a><a href="ftp://f/x"></a>
                      <a href="/real.html"></a>"##;
        let l = extract_links(html);
        assert_eq!(l.len(), 1);
        assert_eq!(l[0].url, "/real.html");
    }

    #[test]
    fn empty_href_skipped() {
        assert!(extract_links(r#"<a href="">x</a>"#).is_empty());
    }

    #[test]
    fn absolute_urls_extracted() {
        let l = extract_links(r#"<a href="http://other.example/p.html">x</a>"#);
        assert_eq!(l[0].url, "http://other.example/p.html");
    }

    #[test]
    fn body_background_extracted() {
        let l = extract_links(r#"<body background="/tile.gif">"#);
        assert_eq!(l[0].kind, LinkKind::Embedded);
        assert_eq!(l[0].attr, "background");
    }

    #[test]
    fn end_tags_have_no_links() {
        assert!(extract_links("</a>").is_empty());
    }

    #[test]
    fn classify_table() {
        assert_eq!(classify("a", "href"), Some(LinkKind::Hyperlink));
        assert_eq!(classify("img", "src"), Some(LinkKind::Embedded));
        assert_eq!(classify("a", "src"), None);
        assert_eq!(classify("p", "href"), None);
    }

    #[test]
    fn href_inside_script_text_not_extracted() {
        let html = r#"<script>document.write('<a href="/fake.html">');</script>"#;
        assert!(extract_links(html).is_empty());
    }
}
