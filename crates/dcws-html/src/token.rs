//! HTML token types.
//!
//! Every token remembers its original source text (`raw`), so a document
//! whose tokens are never modified serializes back byte-for-byte. Only tags
//! whose attributes were rewritten are regenerated from structure.

/// Quoting style of an attribute value in the source.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Quote {
    /// `name="value"`
    Double,
    /// `name='value'`
    Single,
    /// `name=value`
    None,
}

/// One attribute inside a tag.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Attr {
    /// Attribute name exactly as written in the source.
    pub raw_name: String,
    /// Lowercased name for matching.
    pub name: String,
    /// Attribute value, `None` for boolean attributes like `checked`.
    pub value: Option<String>,
    /// Source quoting style (used when regenerating the tag).
    pub quote: Quote,
}

impl Attr {
    /// Build an attribute with a double-quoted value.
    pub fn new(name: impl Into<String>, value: impl Into<String>) -> Self {
        let raw_name = name.into();
        Attr {
            name: raw_name.to_ascii_lowercase(),
            raw_name,
            value: Some(value.into()),
            quote: Quote::Double,
        }
    }

    fn write_to(&self, out: &mut String) {
        out.push_str(&self.raw_name);
        if let Some(v) = &self.value {
            out.push('=');
            // Choose a quoting style that can represent the value. Rewritten
            // URLs never contain quotes, but be defensive.
            let quote = match self.quote {
                Quote::None
                    if v.is_empty()
                        || v.contains(|c: char| {
                            c.is_ascii_whitespace() || c == '>' || c == '"' || c == '\''
                        }) =>
                {
                    Quote::Double
                }
                Quote::Double if v.contains('"') => Quote::Single,
                Quote::Single if v.contains('\'') => Quote::Double,
                q => q,
            };
            match quote {
                Quote::Double => {
                    out.push('"');
                    out.push_str(v);
                    out.push('"');
                }
                Quote::Single => {
                    out.push('\'');
                    out.push_str(v);
                    out.push('\'');
                }
                Quote::None => out.push_str(v),
            }
        }
    }
}

/// A start or end tag.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Tag {
    /// Original source text including the angle brackets.
    pub raw: String,
    /// Tag name exactly as written.
    pub raw_name: String,
    /// Lowercased tag name for matching.
    pub name: String,
    /// `true` for `</name>` end tags.
    pub is_end: bool,
    /// `true` for `<name ... />` self-closing syntax.
    pub self_closing: bool,
    /// Attributes (empty for end tags).
    pub attrs: Vec<Attr>,
    /// Set when an attribute was rewritten; forces regeneration.
    pub modified: bool,
}

impl Tag {
    /// First value of attribute `name` (lowercase), if present.
    pub fn attr(&self, name: &str) -> Option<&str> {
        self.attrs
            .iter()
            .find(|a| a.name == name)
            .and_then(|a| a.value.as_deref())
    }

    /// Set attribute `name` to `value`, marking the tag modified.
    /// Returns `true` if the attribute existed.
    pub fn set_attr(&mut self, name: &str, value: impl Into<String>) -> bool {
        if let Some(a) = self.attrs.iter_mut().find(|a| a.name == name) {
            a.value = Some(value.into());
            self.modified = true;
            true
        } else {
            false
        }
    }

    /// Serialize: original bytes if untouched, regenerated otherwise.
    pub fn write_to(&self, out: &mut String) {
        if !self.modified {
            out.push_str(&self.raw);
            return;
        }
        out.push('<');
        if self.is_end {
            out.push('/');
        }
        out.push_str(&self.raw_name);
        for a in &self.attrs {
            out.push(' ');
            a.write_to(out);
        }
        if self.self_closing {
            out.push_str(" /");
        }
        out.push('>');
    }
}

/// One lexical token of an HTML document.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Token {
    /// Character data outside of tags (raw, entities not decoded).
    Text(String),
    /// A comment, including the `<!--` … `-->` delimiters.
    Comment(String),
    /// A markup declaration (`<!DOCTYPE …>`) or processing instruction
    /// (`<? … >`), raw.
    Decl(String),
    /// A start or end tag.
    Tag(Tag),
}

impl Token {
    /// Append this token's serialization to `out`.
    pub fn write_to(&self, out: &mut String) {
        match self {
            Token::Text(s) | Token::Comment(s) | Token::Decl(s) => out.push_str(s),
            Token::Tag(t) => t.write_to(out),
        }
    }

    /// The tag, if this token is one.
    pub fn as_tag(&self) -> Option<&Tag> {
        match self {
            Token::Tag(t) => Some(t),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tag_with(attrs: Vec<Attr>) -> Tag {
        Tag {
            raw: String::new(),
            raw_name: "a".into(),
            name: "a".into(),
            is_end: false,
            self_closing: false,
            attrs,
            modified: true,
        }
    }

    #[test]
    fn attr_lookup_is_lowercase() {
        let t = tag_with(vec![Attr {
            raw_name: "HREF".into(),
            name: "href".into(),
            value: Some("/x".into()),
            quote: Quote::Double,
        }]);
        assert_eq!(t.attr("href"), Some("/x"));
        assert_eq!(t.attr("HREF"), None, "lookup key must be lowercase");
    }

    #[test]
    fn set_attr_marks_modified() {
        let mut t = tag_with(vec![Attr::new("href", "/old")]);
        t.modified = false;
        assert!(t.set_attr("href", "/new"));
        assert!(t.modified);
        assert_eq!(t.attr("href"), Some("/new"));
        assert!(!t.set_attr("missing", "x"));
    }

    #[test]
    fn modified_tag_regenerates() {
        let mut t = tag_with(vec![Attr::new("href", "/new")]);
        t.raw = "<a href=\"/old\">".into();
        let mut s = String::new();
        t.write_to(&mut s);
        assert_eq!(s, "<a href=\"/new\">");
    }

    #[test]
    fn unmodified_tag_emits_raw() {
        let mut t = tag_with(vec![]);
        t.modified = false;
        t.raw = "<A  Href = '/x' >".into();
        let mut s = String::new();
        t.write_to(&mut s);
        assert_eq!(s, "<A  Href = '/x' >");
    }

    #[test]
    fn quote_style_preserved_and_escaped() {
        let mut a = Attr::new("href", "/x");
        a.quote = Quote::Single;
        let mut s = String::new();
        a.write_to(&mut s);
        assert_eq!(s, "href='/x'");

        // Value containing a single quote flips to double quoting.
        let mut a = Attr::new("alt", "it's");
        a.quote = Quote::Single;
        let mut s = String::new();
        a.write_to(&mut s);
        assert_eq!(s, "alt=\"it's\"");
    }

    #[test]
    fn unquoted_value_with_space_gets_quoted() {
        let mut a = Attr::new("alt", "two words");
        a.quote = Quote::None;
        let mut s = String::new();
        a.write_to(&mut s);
        assert_eq!(s, "alt=\"two words\"");
    }

    #[test]
    fn boolean_attr_serializes_bare() {
        let a = Attr {
            raw_name: "checked".into(),
            name: "checked".into(),
            value: None,
            quote: Quote::None,
        };
        let mut s = String::new();
        a.write_to(&mut s);
        assert_eq!(s, "checked");
    }

    #[test]
    fn self_closing_regeneration() {
        let mut t = tag_with(vec![Attr::new("src", "/i.gif")]);
        t.raw_name = "img".into();
        t.name = "img".into();
        t.self_closing = true;
        let mut s = String::new();
        t.write_to(&mut s);
        assert_eq!(s, "<img src=\"/i.gif\" />");
    }

    #[test]
    fn end_tag_regeneration() {
        let t = Tag {
            raw: String::new(),
            raw_name: "a".into(),
            name: "a".into(),
            is_end: true,
            self_closing: false,
            attrs: vec![],
            modified: true,
        };
        let mut s = String::new();
        t.write_to(&mut s);
        assert_eq!(s, "</a>");
    }
}
