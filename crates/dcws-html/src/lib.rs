//! HTML parsing, hyperlink extraction, and hyperlink rewriting for DCWS.
//!
//! The DCWS paper (§4.3) describes the mechanism: *"a HTML parser builds a
//! simple parse tree from an HTML source file of the document. Any modified
//! links are then replaced in the parse tree, the parse tree is turned back
//! into a stream of HTML tokens, and then written back to its HTML source
//! file."*
//!
//! This crate provides exactly that pipeline, built from scratch:
//!
//! * [`tokenizer`] — a forgiving HTML tokenizer that preserves the original
//!   source text of every token, so re-serializing an untouched document is
//!   **byte-identical** (verified by property tests),
//! * [`tree`] — the "simple parse tree" with void-element handling,
//! * [`links`] — extraction of hyperlinks (`a href`, `area href`,
//!   `frame src`, …) and embedded references (`img src`, …), the two
//!   classes the paper's client benchmark treats differently,
//! * [`rewrite`] — in-place hyperlink replacement driven by a mapping
//!   closure; only tags that actually change are re-serialized.
//!
//! # Example
//!
//! ```
//! use dcws_html::{extract_links, rewrite_links, LinkKind};
//!
//! let html = r#"<html><body><a href="/d.html">D</a><img src="/btn.gif"></body></html>"#;
//! let links = extract_links(html);
//! assert_eq!(links.len(), 2);
//! assert_eq!(links[0].kind, LinkKind::Hyperlink);
//! assert_eq!(links[1].kind, LinkKind::Embedded);
//!
//! // Migrate /d.html to a co-op server: rewrite the link.
//! let (out, n) = rewrite_links(html, |url| {
//!     (url == "/d.html").then(|| "http://coop:8001/~migrate/home/80/d.html".to_string())
//! });
//! assert_eq!(n, 1);
//! assert!(out.contains("coop:8001"));
//! ```

#![warn(missing_docs)]

pub mod links;
pub mod rewrite;
pub mod token;
pub mod tokenizer;
pub mod tree;

pub use links::{extract_links, LinkKind, LinkRef};
pub use rewrite::rewrite_links;
pub use token::{Attr, Quote, Tag, Token};
pub use tokenizer::tokenize;
pub use tree::{parse_tree, Node};

/// Serialize a token stream back to HTML text.
///
/// Untouched tokens emit their original source bytes, so
/// `serialize(tokenize(doc)) == doc` for any input document.
pub fn serialize(tokens: &[Token]) -> String {
    let mut out = String::new();
    for t in tokens {
        t.write_to(&mut out);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tokenize_serialize_identity_smoke() {
        let doc = "<!DOCTYPE html>\n<html>\n<!-- c -->\n<body class=x>\
                   <a href='/a'>text</a><img src=/i.gif></body></html>";
        assert_eq!(serialize(&tokenize(doc)), doc);
    }
}
