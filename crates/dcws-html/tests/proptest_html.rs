//! Property tests for the HTML substrate.

use dcws_html::{extract_links, parse_tree, rewrite_links, serialize, tokenize};
use proptest::prelude::*;

/// Arbitrary "HTML-ish" soup: guaranteed to stress the tokenizer's
/// error-recovery paths.
fn html_soup() -> impl Strategy<Value = String> {
    proptest::string::string_regex(r#"([a-z <>/='"!?-]|<a href=/[a-z]{1,8}>|<img src='/[a-z]{1,8}\.gif'>|</a>|<!-- [a-z]* -->){0,40}"#)
        .unwrap()
}

/// Well-formed documents from structured parts.
fn well_formed_doc() -> impl Strategy<Value = String> {
    fn link() -> proptest::string::RegexGeneratorStrategy<String> {
        proptest::string::string_regex("/[a-z]{1,10}(/[a-z]{1,8})?\\.html").unwrap()
    }
    fn img() -> proptest::string::RegexGeneratorStrategy<String> {
        proptest::string::string_regex("/[a-z]{1,10}\\.(gif|jpg)").unwrap()
    }
    fn text() -> proptest::string::RegexGeneratorStrategy<String> {
        proptest::string::string_regex("[a-zA-Z0-9 .,]{0,30}").unwrap()
    }
    proptest::collection::vec(
        prop_oneof![
            (link(), text()).prop_map(|(l, t)| format!("<a href=\"{l}\">{t}</a>")),
            img().prop_map(|i| format!("<img src=\"{i}\">")),
            text().prop_map(|t| format!("<p>{t}</p>")),
            text().prop_map(|t| format!("<!-- {t} -->")),
        ],
        0..20,
    )
    .prop_map(|parts| format!("<html><body>{}</body></html>", parts.concat()))
}

proptest! {
    #[test]
    fn tokenize_serialize_is_identity(doc in html_soup()) {
        prop_assert_eq!(serialize(&tokenize(&doc)), doc);
    }

    #[test]
    fn tokenize_serialize_identity_on_unicode(doc in "\\PC{0,200}") {
        // Arbitrary unicode text must survive (tokenizer slices at ASCII
        // delimiters only; this guards against char-boundary panics).
        prop_assert_eq!(serialize(&tokenize(&doc)), doc);
    }

    #[test]
    fn noop_rewrite_is_identity(doc in html_soup()) {
        let (out, n) = rewrite_links(&doc, |_| None);
        prop_assert_eq!(n, 0);
        prop_assert_eq!(out, doc);
    }

    #[test]
    fn rewrite_is_idempotent(doc in well_formed_doc()) {
        let map = |u: &str| u.strip_prefix('/').map(|rest| format!("http://coop:1/~migrate/h/80/{rest}"));
        let (once, n1) = rewrite_links(&doc, map);
        let (twice, n2) = rewrite_links(&once, map);
        prop_assert_eq!(once, twice);
        // Second pass rewrites nothing: all URLs are already absolute.
        prop_assert_eq!(n2, 0);
        let _ = n1;
    }

    #[test]
    fn rewrite_count_matches_extracted_links(doc in well_formed_doc()) {
        let links = extract_links(&doc);
        let (_, n) = rewrite_links(&doc, |_| Some("/replaced.html".into()));
        // Every extracted link is rewriteable (none already equal the target).
        prop_assert_eq!(n, links.len());
    }

    #[test]
    fn extracted_links_survive_roundtrip(doc in well_formed_doc()) {
        let before = extract_links(&doc);
        let after = extract_links(&serialize(&tokenize(&doc)));
        prop_assert_eq!(before, after);
    }

    #[test]
    fn parse_tree_never_panics(doc in html_soup()) {
        let t = parse_tree(&doc);
        let _ = t.element_count();
    }

    #[test]
    fn rewrite_preserves_link_structure(doc in well_formed_doc()) {
        // Rewriting every URL u -> u + suffix, then extracting, yields the
        // same multiset of URLs with the suffix applied, in the same order.
        let (out, _) = rewrite_links(&doc, |u| Some(format!("{u}.v2")));
        let before: Vec<String> = extract_links(&doc).into_iter().map(|l| l.url + ".v2").collect();
        let after: Vec<String> = extract_links(&out).into_iter().map(|l| l.url).collect();
        prop_assert_eq!(before, after);
    }
}
