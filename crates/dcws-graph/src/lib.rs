//! Document-graph substrate for DCWS: the two key data structures of §3.3
//! and the migration-selection policy of §4.1.
//!
//! * [`ldg`] — the **Local Document Graph**: one tuple
//!   `(Name, Location, Size, Hits, LinkTo, LinkFrom, Dirty)` per document
//!   hosted by a server, hash-indexed by name because the tuple is touched
//!   on every request.
//! * [`glt`] — the **Global Load Table**: each server's best-effort local
//!   view of every cooperating server's load, merged last-writer-wins from
//!   piggybacked reports.
//! * [`metrics`] — sliding-window connections-per-second and
//!   bytes-per-second counters feeding the GLT (§5.3 discusses when each is
//!   the better balancing metric).
//! * [`select`] — **Algorithm 1**, the document-selection procedure, plus a
//!   naive hottest-first variant used as an ablation baseline.
//!
//! # Example
//!
//! ```
//! use dcws_graph::{LocalDocGraph, DocKind, Location, ServerId, select_for_migration};
//!
//! let mut ldg = LocalDocGraph::new();
//! ldg.insert_doc("/index.html", 2048, DocKind::Html, vec!["/d.html".into()], true);
//! ldg.insert_doc("/d.html", 4096, DocKind::Html, vec![], false);
//! ldg.record_hit("/d.html", 4096);
//! ldg.rotate_hits();
//!
//! // /index.html is an entry point, so Algorithm 1 must pick /d.html.
//! let pick = select_for_migration(&ldg, 1).unwrap();
//! assert_eq!(pick, "/d.html");
//!
//! let coop = ServerId::new("coop1:8001");
//! let dirtied = ldg.migrate("/d.html", coop.clone(), 0);
//! assert_eq!(dirtied, vec!["/index.html".to_string()]);
//! assert_eq!(ldg.get("/d.html").unwrap().location, Location::Coop(coop));
//! ```

#![warn(missing_docs)]

pub mod glt;
pub mod ldg;
pub mod metrics;
pub mod select;

pub use glt::{GlobalLoadTable, LoadInfo};
pub use ldg::{DocEntry, DocKind, DocName, LocalDocGraph, Location};
pub use metrics::{BalanceMetric, RateWindow};
pub use select::{select_for_migration, select_hottest};

/// Identity of a cooperating server, conventionally `host:port`.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ServerId(String);

impl ServerId {
    /// Wrap a `host:port` string.
    pub fn new(s: impl Into<String>) -> Self {
        ServerId(s.into())
    }

    /// The `host:port` text.
    pub fn as_str(&self) -> &str {
        &self.0
    }

    /// Split into host and port. Port defaults to 80 when absent or
    /// unparsable (best-effort, identities are operator-supplied).
    pub fn host_port(&self) -> (&str, u16) {
        match self.0.rsplit_once(':') {
            Some((h, p)) => (h, p.parse().unwrap_or(80)),
            None => (&self.0, 80),
        }
    }
}

impl std::fmt::Display for ServerId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl From<&str> for ServerId {
    fn from(s: &str) -> Self {
        ServerId::new(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn server_id_host_port() {
        assert_eq!(ServerId::new("h:8080").host_port(), ("h", 8080));
        assert_eq!(ServerId::new("h").host_port(), ("h", 80));
        assert_eq!(ServerId::new("h:bad").host_port(), ("h", 80));
        assert_eq!(ServerId::new("10.0.0.1:99").host_port(), ("10.0.0.1", 99));
    }

    #[test]
    fn server_id_display() {
        assert_eq!(ServerId::new("x:1").to_string(), "x:1");
    }
}
