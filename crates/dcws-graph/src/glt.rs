//! The Global Load Table (GLT) of §3.3.
//!
//! Each server keeps a *local* copy of the whole group's load, one
//! `(Server, LoadMetric)` tuple per peer, refreshed best-effort from
//! piggybacked `X-DCWS-Load` reports. Merging is last-writer-wins on the
//! report timestamp, which makes it commutative and idempotent — gossip can
//! arrive duplicated and out of order through any transfer path.

use crate::metrics::BalanceMetric;
use crate::ServerId;
use std::collections::HashMap;

/// One server's load measurement as stored in the GLT.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LoadInfo {
    /// Connections per second over the measurement window.
    pub cps: f64,
    /// Bytes per second over the measurement window.
    pub bps: f64,
    /// Measurement timestamp in milliseconds.
    pub ts_ms: u64,
}

impl LoadInfo {
    /// The value used for balancing decisions under `metric`.
    pub fn value(&self, metric: BalanceMetric) -> f64 {
        match metric {
            BalanceMetric::Cps => self.cps,
            BalanceMetric::Bps => self.bps,
        }
    }
}

/// Best-effort global load table: this server's view of the group.
#[derive(Debug, Clone)]
pub struct GlobalLoadTable {
    self_id: ServerId,
    map: HashMap<ServerId, LoadInfo>,
}

impl GlobalLoadTable {
    /// A table for server `self_id`, knowing only itself (at zero load).
    pub fn new(self_id: ServerId) -> Self {
        let mut map = HashMap::new();
        map.insert(
            self_id.clone(),
            LoadInfo {
                cps: 0.0,
                bps: 0.0,
                ts_ms: 0,
            },
        );
        GlobalLoadTable { self_id, map }
    }

    /// This server's identity.
    pub fn self_id(&self) -> &ServerId {
        &self.self_id
    }

    /// Register a peer with no load information yet (joins at ts 0, so any
    /// real report immediately supersedes it).
    pub fn add_peer(&mut self, peer: ServerId) {
        self.map.entry(peer).or_insert(LoadInfo {
            cps: 0.0,
            bps: 0.0,
            ts_ms: 0,
        });
    }

    /// Remove a peer entirely (it was declared dead by the pinger).
    pub fn remove_peer(&mut self, peer: &ServerId) {
        if peer != &self.self_id {
            self.map.remove(peer);
        }
    }

    /// Merge one report: kept only if strictly newer than what we have
    /// (last-writer-wins). Returns whether the table changed.
    pub fn update(&mut self, server: ServerId, info: LoadInfo) -> bool {
        match self.map.get(&server) {
            Some(cur) if cur.ts_ms >= info.ts_ms => false,
            _ => {
                self.map.insert(server, info);
                true
            }
        }
    }

    /// Overwrite our own entry with a fresh local measurement.
    pub fn set_self(&mut self, cps: f64, bps: f64, ts_ms: u64) {
        self.map
            .insert(self.self_id.clone(), LoadInfo { cps, bps, ts_ms });
    }

    /// Our own current entry.
    pub fn self_info(&self) -> LoadInfo {
        self.map[&self.self_id]
    }

    /// Look up a server's info.
    pub fn get(&self, server: &ServerId) -> Option<LoadInfo> {
        self.map.get(server).copied()
    }

    /// All known servers (including self), sorted for determinism.
    pub fn servers(&self) -> Vec<ServerId> {
        let mut v: Vec<ServerId> = self.map.keys().cloned().collect();
        v.sort();
        v
    }

    /// Number of known servers including self.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether only this server is known.
    pub fn is_empty(&self) -> bool {
        self.map.len() <= 1
    }

    /// The least-loaded server under `metric`, excluding self and any
    /// server in `exclude`. This is the §4.2 co-op selection: *"the server
    /// with the lowest LoadMetric value is selected from the global load
    /// table"*. Ties break on server id for determinism.
    pub fn least_loaded(&self, metric: BalanceMetric, exclude: &[ServerId]) -> Option<ServerId> {
        self.map
            .iter()
            .filter(|(s, _)| **s != self.self_id && !exclude.contains(s))
            .min_by(|(s1, a), (s2, b)| {
                a.value(metric)
                    .partial_cmp(&b.value(metric))
                    .unwrap_or(std::cmp::Ordering::Equal)
                    .then_with(|| s1.cmp(s2))
            })
            .map(|(s, _)| s.clone())
    }

    /// Peers whose information is older than `max_age_ms` at `now_ms` —
    /// candidates for an artificial pinger transfer (§4.5).
    pub fn stale_peers(&self, now_ms: u64, max_age_ms: u64) -> Vec<ServerId> {
        let mut v: Vec<ServerId> = self
            .map
            .iter()
            .filter(|(s, i)| **s != self.self_id && now_ms.saturating_sub(i.ts_ms) > max_age_ms)
            .map(|(s, _)| s.clone())
            .collect();
        v.sort();
        v
    }

    /// Snapshot of every entry, for piggybacking onto an outgoing transfer.
    pub fn snapshot(&self) -> Vec<(ServerId, LoadInfo)> {
        let mut v: Vec<(ServerId, LoadInfo)> =
            self.map.iter().map(|(s, i)| (s.clone(), *i)).collect();
        v.sort_by(|a, b| a.0.cmp(&b.0));
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn info(cps: f64, ts: u64) -> LoadInfo {
        LoadInfo {
            cps,
            bps: cps * 1000.0,
            ts_ms: ts,
        }
    }

    #[test]
    fn new_table_knows_self() {
        let t = GlobalLoadTable::new(ServerId::new("me:1"));
        assert_eq!(t.len(), 1);
        assert!(t.is_empty());
        assert_eq!(t.self_info().cps, 0.0);
    }

    #[test]
    fn update_is_last_writer_wins() {
        let mut t = GlobalLoadTable::new(ServerId::new("me:1"));
        let p = ServerId::new("p:1");
        assert!(t.update(p.clone(), info(5.0, 100)));
        assert!(!t.update(p.clone(), info(9.0, 50)), "older report ignored");
        assert_eq!(t.get(&p).unwrap().cps, 5.0);
        assert!(t.update(p.clone(), info(2.0, 200)));
        assert_eq!(t.get(&p).unwrap().cps, 2.0);
    }

    #[test]
    fn update_same_ts_ignored_for_idempotence() {
        let mut t = GlobalLoadTable::new(ServerId::new("me:1"));
        let p = ServerId::new("p:1");
        t.update(p.clone(), info(5.0, 100));
        assert!(!t.update(p.clone(), info(7.0, 100)));
        assert_eq!(t.get(&p).unwrap().cps, 5.0);
    }

    #[test]
    fn least_loaded_excludes_self_and_list() {
        let mut t = GlobalLoadTable::new(ServerId::new("me:1"));
        t.set_self(0.0, 0.0, 10); // self has the lowest load but is excluded
        t.update(ServerId::new("a:1"), info(5.0, 10));
        t.update(ServerId::new("b:1"), info(3.0, 10));
        t.update(ServerId::new("c:1"), info(9.0, 10));
        assert_eq!(
            t.least_loaded(BalanceMetric::Cps, &[]),
            Some(ServerId::new("b:1"))
        );
        assert_eq!(
            t.least_loaded(BalanceMetric::Cps, &[ServerId::new("b:1")]),
            Some(ServerId::new("a:1"))
        );
    }

    #[test]
    fn least_loaded_tie_breaks_on_id() {
        let mut t = GlobalLoadTable::new(ServerId::new("me:1"));
        t.update(ServerId::new("b:1"), info(1.0, 10));
        t.update(ServerId::new("a:1"), info(1.0, 10));
        assert_eq!(
            t.least_loaded(BalanceMetric::Cps, &[]),
            Some(ServerId::new("a:1"))
        );
    }

    #[test]
    fn least_loaded_none_when_alone() {
        let t = GlobalLoadTable::new(ServerId::new("me:1"));
        assert_eq!(t.least_loaded(BalanceMetric::Cps, &[]), None);
    }

    #[test]
    fn bps_metric_changes_choice() {
        let mut t = GlobalLoadTable::new(ServerId::new("me:1"));
        t.update(
            ServerId::new("a:1"),
            LoadInfo {
                cps: 1.0,
                bps: 9e6,
                ts_ms: 1,
            },
        );
        t.update(
            ServerId::new("b:1"),
            LoadInfo {
                cps: 9.0,
                bps: 1e3,
                ts_ms: 1,
            },
        );
        assert_eq!(
            t.least_loaded(BalanceMetric::Cps, &[]),
            Some(ServerId::new("a:1"))
        );
        assert_eq!(
            t.least_loaded(BalanceMetric::Bps, &[]),
            Some(ServerId::new("b:1"))
        );
    }

    #[test]
    fn stale_peers_detected() {
        let mut t = GlobalLoadTable::new(ServerId::new("me:1"));
        t.update(ServerId::new("old:1"), info(1.0, 1_000));
        t.update(ServerId::new("new:1"), info(1.0, 9_000));
        assert_eq!(t.stale_peers(10_000, 5_000), vec![ServerId::new("old:1")]);
        assert!(t.stale_peers(10_000, 60_000).is_empty());
    }

    #[test]
    fn add_peer_then_report_supersedes() {
        let mut t = GlobalLoadTable::new(ServerId::new("me:1"));
        t.add_peer(ServerId::new("p:1"));
        assert_eq!(t.get(&ServerId::new("p:1")).unwrap().ts_ms, 0);
        assert!(t.update(ServerId::new("p:1"), info(4.0, 1)));
        // add_peer never clobbers existing info.
        t.add_peer(ServerId::new("p:1"));
        assert_eq!(t.get(&ServerId::new("p:1")).unwrap().cps, 4.0);
    }

    #[test]
    fn remove_peer_protects_self() {
        let me = ServerId::new("me:1");
        let mut t = GlobalLoadTable::new(me.clone());
        t.add_peer(ServerId::new("p:1"));
        t.remove_peer(&ServerId::new("p:1"));
        assert_eq!(t.len(), 1);
        t.remove_peer(&me);
        assert_eq!(t.len(), 1, "self entry cannot be removed");
    }

    #[test]
    fn snapshot_is_sorted_and_complete() {
        let mut t = GlobalLoadTable::new(ServerId::new("me:1"));
        t.update(ServerId::new("b:1"), info(1.0, 1));
        t.update(ServerId::new("a:1"), info(2.0, 1));
        let snap = t.snapshot();
        let ids: Vec<String> = snap.iter().map(|(s, _)| s.to_string()).collect();
        assert_eq!(ids, vec!["a:1", "b:1", "me:1"]);
    }
}
