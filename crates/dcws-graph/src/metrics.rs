//! Sliding-window load measurement.
//!
//! §5.3 of the paper settles on connections per second (CPS) and bytes per
//! second (BPS) as the two measures that matter, and discusses when each is
//! the better *balancing* metric (CPS for small-file sites like LOD, BPS
//! for large-file sites like Sequoia). [`RateWindow`] measures both over a
//! bucketed sliding window; [`BalanceMetric`] picks which one drives
//! migration decisions.

use std::collections::VecDeque;

/// Which measurement drives load-balancing decisions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BalanceMetric {
    /// Connections per second — the paper's default, because real-world
    /// web transfers are small and connection overhead dominates.
    Cps,
    /// Bytes per second — better when file sizes are large enough to
    /// amortize connection setup/teardown (the Sequoia regime).
    Bps,
}

/// A bucketed sliding-window counter for connections and bytes.
///
/// The window is divided into fixed-width buckets; events land in the
/// bucket containing their timestamp and rates are computed over the full
/// window. Timestamps must be non-decreasing per instance (they come from
/// one server's clock).
#[derive(Debug, Clone)]
pub struct RateWindow {
    bucket_ms: u64,
    n_buckets: usize,
    /// Front = oldest. Each entry: (bucket index, connections, bytes).
    buckets: VecDeque<(u64, u64, u64)>,
}

impl RateWindow {
    /// A window of `window_ms` total span split into `n_buckets` buckets.
    ///
    /// # Panics
    /// Panics if either argument is zero or `window_ms < n_buckets`.
    pub fn new(window_ms: u64, n_buckets: usize) -> Self {
        assert!(window_ms > 0 && n_buckets > 0, "degenerate window");
        let bucket_ms = (window_ms / n_buckets as u64).max(1);
        RateWindow {
            bucket_ms,
            n_buckets,
            buckets: VecDeque::new(),
        }
    }

    /// The paper's statistics window: 10 s in 10 buckets (T_st).
    pub fn paper_default() -> Self {
        RateWindow::new(10_000, 10)
    }

    /// Total window span in milliseconds.
    pub fn window_ms(&self) -> u64 {
        self.bucket_ms * self.n_buckets as u64
    }

    fn bucket_index(&self, now_ms: u64) -> u64 {
        now_ms / self.bucket_ms
    }

    fn evict(&mut self, now_bucket: u64) {
        let oldest_keep = now_bucket.saturating_sub(self.n_buckets as u64 - 1);
        while self
            .buckets
            .front()
            .is_some_and(|(b, _, _)| *b < oldest_keep)
        {
            self.buckets.pop_front();
        }
    }

    /// Record one completed connection that transferred `bytes`.
    pub fn record(&mut self, now_ms: u64, bytes: u64) {
        self.record_n(now_ms, 1, bytes);
    }

    /// Record `conns` connections totalling `bytes`.
    pub fn record_n(&mut self, now_ms: u64, conns: u64, bytes: u64) {
        let b = self.bucket_index(now_ms);
        self.evict(b);
        match self.buckets.back_mut() {
            Some((back, c, by)) if *back == b => {
                *c += conns;
                *by += bytes;
            }
            _ => self.buckets.push_back((b, conns, bytes)),
        }
    }

    /// `(cps, bps)` over the window ending at `now_ms`.
    pub fn rates(&mut self, now_ms: u64) -> (f64, f64) {
        let b = self.bucket_index(now_ms);
        self.evict(b);
        let (conns, bytes) = self
            .buckets
            .iter()
            .fold((0u64, 0u64), |(c, by), (_, bc, bby)| (c + bc, by + bby));
        let secs = self.window_ms() as f64 / 1000.0;
        (conns as f64 / secs, bytes as f64 / secs)
    }

    /// Total connections currently inside the window.
    pub fn connections(&mut self, now_ms: u64) -> u64 {
        self.evict(self.bucket_index(now_ms));
        self.buckets.iter().map(|(_, c, _)| *c).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_window_is_zero() {
        let mut w = RateWindow::new(1000, 10);
        assert_eq!(w.rates(0), (0.0, 0.0));
        assert_eq!(w.connections(5000), 0);
    }

    #[test]
    fn steady_rate_measured() {
        let mut w = RateWindow::new(1000, 10);
        // 10 connections of 100 bytes spread over one second.
        for i in 0..10 {
            w.record(i * 100, 100);
        }
        let (cps, bps) = w.rates(999);
        assert!((cps - 10.0).abs() < 1e-9, "cps={cps}");
        assert!((bps - 1000.0).abs() < 1e-9, "bps={bps}");
    }

    #[test]
    fn old_events_age_out() {
        let mut w = RateWindow::new(1000, 10);
        w.record(0, 100);
        assert_eq!(w.connections(500), 1);
        assert_eq!(w.connections(2000), 0, "event older than window evicted");
    }

    #[test]
    fn partial_aging() {
        let mut w = RateWindow::new(1000, 10);
        w.record(0, 100); // bucket 0
        w.record(900, 100); // bucket 9
                            // At t=1050 (bucket 10), bucket 0 is out, bucket 9 still in.
        assert_eq!(w.connections(1050), 1);
    }

    #[test]
    fn record_n_batches() {
        let mut w = RateWindow::new(2000, 4);
        w.record_n(100, 50, 5_000);
        let (cps, bps) = w.rates(100);
        assert!((cps - 25.0).abs() < 1e-9);
        assert!((bps - 2500.0).abs() < 1e-9);
    }

    #[test]
    fn same_bucket_coalesces() {
        let mut w = RateWindow::new(1000, 10);
        w.record(10, 1);
        w.record(20, 1);
        w.record(99, 1);
        assert_eq!(w.buckets.len(), 1);
        assert_eq!(w.connections(99), 3);
    }

    #[test]
    fn paper_default_span() {
        let w = RateWindow::paper_default();
        assert_eq!(w.window_ms(), 10_000);
    }

    #[test]
    #[should_panic(expected = "degenerate")]
    fn zero_window_panics() {
        RateWindow::new(0, 10);
    }

    #[test]
    fn rates_after_long_idle_are_zero() {
        let mut w = RateWindow::new(1000, 10);
        w.record_n(0, 100, 10_000);
        let (cps, _) = w.rates(100);
        assert!(cps > 0.0);
        let (cps, bps) = w.rates(1_000_000);
        assert_eq!((cps, bps), (0.0, 0.0));
    }
}
