//! Algorithm 1 — Document Selection for Migration (§4.1, Figure 4).
//!
//! Given a home server's local document graph and a hit threshold `T`,
//! select the document whose migration best balances load at least cost:
//!
//! 1. Candidates = every document in the graph (we restrict to documents
//!    still *at home* — already-migrated documents are re-balanced via the
//!    T_home revocation timer, §4.5).
//! 2. Remove well-known entry points (they must stay home so users see a
//!    consistent site view and redirects stay rare).
//! 3. Remove documents with `Hits < T`; if that empties the set, restore
//!    it and retry with `T` halved until something survives (migrating a
//!    cold document "does not do much good for load balancing").
//! 4. Among survivors keep those with the fewest `LinkFrom` sources *not*
//!    on the home server — rewriting those sources costs cross-server
//!    traffic.
//! 5. Tie-break by fewest `LinkTo` targets, which keeps future step-4
//!    costs low. (We add a final lexicographic tie-break so selection is
//!    deterministic.)

use crate::ldg::{DocName, LocalDocGraph};

/// Run Algorithm 1. Returns the selected document, or `None` when nothing
/// is eligible (empty graph, or everything is an entry point or already
/// migrated).
pub fn select_for_migration(ldg: &LocalDocGraph, threshold: u64) -> Option<DocName> {
    // Steps 1–2: all home-resident, non-entry-point documents.
    let candidates: Vec<&crate::ldg::DocEntry> = ldg
        .iter()
        .filter(|e| e.location.is_home() && !e.entry_point)
        .collect();
    if candidates.is_empty() {
        return None;
    }

    // Step 3: threshold filter with geometric back-off.
    let mut t = threshold;
    let hot: Vec<&crate::ldg::DocEntry> = loop {
        let survivors: Vec<_> = candidates.iter().copied().filter(|e| e.hits >= t).collect();
        if !survivors.is_empty() {
            break survivors;
        }
        if t == 0 {
            // hits >= 0 always holds, so this is unreachable; guard anyway.
            break candidates.clone();
        }
        t /= 2;
    };

    // Step 4: minimal remote LinkFrom count.
    let min_remote = hot
        .iter()
        .map(|e| e.remote_link_from(ldg))
        .min()
        .expect("hot is non-empty");
    let step4: Vec<_> = hot
        .into_iter()
        .filter(|e| e.remote_link_from(ldg) == min_remote)
        .collect();

    // Step 5: minimal LinkTo count, then name for determinism.
    step4
        .into_iter()
        .min_by(|a, b| {
            a.link_to
                .len()
                .cmp(&b.link_to.len())
                .then_with(|| a.name.cmp(&b.name))
        })
        .map(|e| e.name.clone())
}

/// Ablation baseline: ignore steps 4–5 and just pick the hottest eligible
/// document (ties broken by name). Used to quantify how much the paper's
/// link-aware selection saves in rewrite traffic and redirects.
pub fn select_hottest(ldg: &LocalDocGraph) -> Option<DocName> {
    ldg.iter()
        .filter(|e| e.location.is_home() && !e.entry_point)
        .max_by(|a, b| a.hits.cmp(&b.hits).then_with(|| b.name.cmp(&a.name)))
        .map(|e| e.name.clone())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ldg::DocKind;
    use crate::ServerId;

    /// Build the paper's Figure 1(a) server #1: A,B entry points; C(100),
    /// D(200), E(50) internal; A->C, B->{D,E}, E->D.
    fn figure1() -> LocalDocGraph {
        let mut g = LocalDocGraph::new();
        g.insert_doc("A", 100, DocKind::Html, vec!["C".into()], true);
        g.insert_doc("B", 100, DocKind::Html, vec!["D".into(), "E".into()], true);
        g.insert_doc("C", 100, DocKind::Html, vec![], false);
        g.insert_doc("D", 100, DocKind::Html, vec![], false);
        g.insert_doc("E", 100, DocKind::Html, vec!["D".into()], false);
        for (name, hits) in [("C", 100u64), ("D", 200), ("E", 50)] {
            for _ in 0..hits {
                g.record_hit(name, 1);
            }
        }
        g.rotate_hits();
        g
    }

    #[test]
    fn entry_points_never_selected() {
        let g = figure1();
        for t in [0, 1, 50, 1000] {
            let pick = select_for_migration(&g, t).unwrap();
            assert!(
                pick != "A" && pick != "B",
                "picked entry point {pick} at T={t}"
            );
        }
    }

    #[test]
    fn threshold_filters_cold_documents() {
        let g = figure1();
        // T=150: only D (200 hits) survives step 3.
        assert_eq!(select_for_migration(&g, 150).unwrap(), "D");
    }

    #[test]
    fn threshold_backs_off_until_nonempty() {
        let g = figure1();
        // T=1000 removes everything; halving reaches 125 where D survives.
        assert_eq!(select_for_migration(&g, 1000).unwrap(), "D");
    }

    #[test]
    fn step4_prefers_fewest_remote_sources() {
        let mut g = figure1();
        // Migrate E; now D has one remote LinkFrom (E), C has none.
        g.migrate("E", ServerId::new("#2"), 0);
        // T=10: C (100) and D (200) both survive. C has 0 remote sources,
        // D has 1 → C wins despite fewer hits.
        assert_eq!(select_for_migration(&g, 10).unwrap(), "C");
    }

    #[test]
    fn step5_tie_breaks_on_link_to() {
        let mut g = LocalDocGraph::new();
        g.insert_doc("idx", 1, DocKind::Html, vec!["p".into(), "q".into()], true);
        // p links out to 2 docs, q to none; equal hits and remote sources.
        g.insert_doc("p", 1, DocKind::Html, vec!["x".into(), "y".into()], false);
        g.insert_doc("q", 1, DocKind::Html, vec![], false);
        g.insert_doc("x", 1, DocKind::Html, vec![], false);
        g.insert_doc("y", 1, DocKind::Html, vec![], false);
        for d in ["p", "q"] {
            for _ in 0..10 {
                g.record_hit(d, 1);
            }
        }
        g.rotate_hits();
        // x and y have 0 hits; with T=5, only p and q survive step 3.
        assert_eq!(select_for_migration(&g, 5).unwrap(), "q");
    }

    #[test]
    fn already_migrated_not_reselected() {
        let mut g = figure1();
        g.migrate("D", ServerId::new("#2"), 0);
        let pick = select_for_migration(&g, 1).unwrap();
        assert_ne!(pick, "D");
    }

    #[test]
    fn none_when_only_entry_points() {
        let mut g = LocalDocGraph::new();
        g.insert_doc("home", 1, DocKind::Html, vec![], true);
        assert_eq!(select_for_migration(&g, 1), None);
    }

    #[test]
    fn none_on_empty_graph() {
        assert_eq!(select_for_migration(&LocalDocGraph::new(), 1), None);
    }

    #[test]
    fn none_when_everything_migrated() {
        let mut g = figure1();
        for d in ["C", "D", "E"] {
            g.migrate(d, ServerId::new("#2"), 0);
        }
        assert_eq!(select_for_migration(&g, 1), None);
    }

    #[test]
    fn zero_hit_graph_still_selects() {
        let mut g = LocalDocGraph::new();
        g.insert_doc("idx", 1, DocKind::Html, vec!["cold".into()], true);
        g.insert_doc("cold", 1, DocKind::Html, vec![], false);
        // No hits at all: threshold back-off reaches 0 and accepts.
        assert_eq!(select_for_migration(&g, 64).unwrap(), "cold");
    }

    #[test]
    fn selection_is_deterministic() {
        let g = figure1();
        let a = select_for_migration(&g, 10);
        let b = select_for_migration(&g, 10);
        assert_eq!(a, b);
    }

    #[test]
    fn hottest_baseline_ignores_link_structure() {
        let mut g = figure1();
        g.migrate("E", ServerId::new("#2"), 0);
        // Algorithm 1 picks C here (fewest remote sources); the naive
        // baseline still grabs D, the hottest.
        assert_eq!(select_hottest(&g).unwrap(), "D");
        assert_eq!(select_for_migration(&g, 10).unwrap(), "C");
    }

    #[test]
    fn hottest_baseline_skips_entry_points_and_migrated() {
        let mut g = figure1();
        g.migrate("D", ServerId::new("#2"), 0);
        assert_eq!(select_hottest(&g).unwrap(), "C");
    }
}
