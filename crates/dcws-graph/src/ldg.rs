//! The Local Document Graph (LDG) of §3.3.
//!
//! Each server maintains one tuple per document it is the *home* for:
//!
//! ```text
//! (Name, Location, Size, Hits, LinkTo, LinkFrom, Dirty)
//! ```
//!
//! indexed by a hash table because the tuple is consulted on every request
//! the server processes. `LinkFrom` is derived from the `LinkTo` lists at
//! build time and maintained under mutation; the symmetry invariant
//! (`x ∈ LinkTo(y) ⇔ y ∈ LinkFrom(x)` for in-graph documents) is enforced
//! by construction and checked by property tests.

use crate::ServerId;
use std::collections::HashMap;

/// Canonical document name: the absolute path on the home server,
/// e.g. `/archive/msg0042.html`.
pub type DocName = String;

/// Where a document is currently being served from.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Location {
    /// On its home server (where it originated).
    Home,
    /// Migrated to the given co-op server.
    Coop(ServerId),
}

impl Location {
    /// Whether the document is at home.
    pub fn is_home(&self) -> bool {
        matches!(self, Location::Home)
    }
}

/// Coarse document class; affects content type and client behaviour
/// (embedded images are fetched automatically, HTML is navigated).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DocKind {
    /// An HTML page whose links may be rewritten.
    Html,
    /// An image or other opaque object (never reparsed).
    Image,
}

impl DocKind {
    /// The media type served for this kind.
    pub fn content_type(&self) -> &'static str {
        match self {
            DocKind::Html => "text/html",
            DocKind::Image => "application/octet-stream",
        }
    }
}

/// One LDG tuple (Figure 2 of the paper), plus the bookkeeping fields the
/// prototype needs (entry-point flag, migration timestamp, windowed hits).
#[derive(Debug, Clone, PartialEq)]
pub struct DocEntry {
    /// Document name (also the hash key).
    pub name: DocName,
    /// Which server currently hosts the document.
    pub location: Location,
    /// Content size in bytes.
    pub size: u64,
    /// Hits in the last completed accounting window — the value Algorithm 1
    /// compares against its threshold.
    pub hits: u64,
    /// Hits accumulating in the current window; promoted by
    /// [`LocalDocGraph::rotate_hits`].
    pub hits_current: u64,
    /// Lifetime hit count (reporting only).
    pub hits_total: u64,
    /// Documents this document links to.
    pub link_to: Vec<DocName>,
    /// Documents that link to this document (derived).
    pub link_from: Vec<DocName>,
    /// Set when some `link_to` target migrated and this document must be
    /// regenerated with rewritten hyperlinks before it is next served.
    pub dirty: bool,
    /// Well-known entry point: never migrated (Algorithm 1 step 2).
    pub entry_point: bool,
    /// Document class.
    pub kind: DocKind,
    /// When the current migration was decided (ms), for the T_home
    /// re-migration timer. `None` while at home.
    pub migrated_at: Option<u64>,
}

impl DocEntry {
    /// Number of `link_from` documents that do **not** reside on this home
    /// server (Algorithm 1 step 4 minimizes this to avoid cross-server
    /// rewrite traffic). `ldg` supplies the locations.
    pub fn remote_link_from(&self, ldg: &LocalDocGraph) -> usize {
        self.link_from
            .iter()
            .filter(|n| ldg.get(n).is_some_and(|e| !e.location.is_home()))
            .count()
    }
}

/// The Local Document Graph: hash-indexed LDG tuples for one server.
#[derive(Debug, Clone, Default)]
pub struct LocalDocGraph {
    docs: HashMap<DocName, DocEntry>,
}

impl LocalDocGraph {
    /// An empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of documents.
    pub fn len(&self) -> usize {
        self.docs.len()
    }

    /// Whether the graph is empty.
    pub fn is_empty(&self) -> bool {
        self.docs.is_empty()
    }

    /// Insert a document and maintain `link_from` symmetry for both
    /// directions. Links to documents not (yet) in the graph are kept in
    /// `link_to` — the symmetric edge appears when/if the target is
    /// inserted. Re-inserting an existing name replaces its tuple (content
    /// update by the site author) while preserving hit history.
    pub fn insert_doc(
        &mut self,
        name: impl Into<DocName>,
        size: u64,
        kind: DocKind,
        link_to: Vec<DocName>,
        entry_point: bool,
    ) {
        let name = name.into();
        // If replacing, retract old outbound edges first.
        let (hits, hits_current, hits_total) = match self.docs.remove(&name) {
            Some(old) => {
                for t in &old.link_to {
                    if let Some(te) = self.docs.get_mut(t) {
                        te.link_from.retain(|n| n != &name);
                    }
                }
                (old.hits, old.hits_current, old.hits_total)
            }
            None => (0, 0, 0),
        };
        // Outbound edges: register us in each in-graph target's link_from.
        for t in &link_to {
            if let Some(te) = self.docs.get_mut(t) {
                if !te.link_from.contains(&name) {
                    te.link_from.push(name.clone());
                }
            }
        }
        // Inbound edges: anyone already pointing at this name, including a
        // self-link from the document itself.
        let mut link_from: Vec<DocName> = self
            .docs
            .values()
            .filter(|e| e.link_to.contains(&name))
            .map(|e| e.name.clone())
            .collect();
        if link_to.contains(&name) {
            link_from.push(name.clone());
        }
        self.docs.insert(
            name.clone(),
            DocEntry {
                name,
                location: Location::Home,
                size,
                hits,
                hits_current,
                hits_total,
                link_to,
                link_from,
                dirty: false,
                entry_point,
                kind,
                migrated_at: None,
            },
        );
    }

    /// Remove a document, retracting its edges. Returns the removed tuple.
    pub fn remove_doc(&mut self, name: &str) -> Option<DocEntry> {
        let entry = self.docs.remove(name)?;
        for t in &entry.link_to {
            if let Some(te) = self.docs.get_mut(t) {
                te.link_from.retain(|n| n != name);
            }
        }
        for s in &entry.link_from {
            if let Some(se) = self.docs.get_mut(s) {
                se.link_to.retain(|n| n != name);
            }
        }
        Some(entry)
    }

    /// Look up a tuple by name.
    pub fn get(&self, name: &str) -> Option<&DocEntry> {
        self.docs.get(name)
    }

    /// Mutable lookup.
    pub fn get_mut(&mut self, name: &str) -> Option<&mut DocEntry> {
        self.docs.get_mut(name)
    }

    /// Whether `name` is in the graph.
    pub fn contains(&self, name: &str) -> bool {
        self.docs.contains_key(name)
    }

    /// Iterate all tuples (arbitrary order).
    pub fn iter(&self) -> impl Iterator<Item = &DocEntry> {
        self.docs.values()
    }

    /// Record `bytes` served for a hit on `name`. Unknown names are
    /// ignored (the caller already 404'd).
    pub fn record_hit(&mut self, name: &str, bytes: u64) {
        self.record_hits(name, 1, bytes);
    }

    /// Record `n` hits on `name` at once — the drain path for hosts that
    /// batch hit accounting outside the graph lock (the read-mostly serve
    /// path) and fold it in at tick time. Unknown names are ignored.
    pub fn record_hits(&mut self, name: &str, n: u64, _bytes: u64) {
        if let Some(e) = self.docs.get_mut(name) {
            e.hits_current += n;
            e.hits_total += n;
        }
    }

    /// Close the current accounting window: promote `hits_current` into
    /// `hits` (the value Algorithm 1 reads) and start a fresh window.
    /// Called every statistics-recalculation interval (T_st).
    pub fn rotate_hits(&mut self) {
        for e in self.docs.values_mut() {
            e.hits = e.hits_current;
            e.hits_current = 0;
        }
    }

    /// Logically migrate `name` to `coop` (§4.2): update `Location`, stamp
    /// the migration time, and set the `Dirty` bit on every document in its
    /// `LinkFrom` list so they are regenerated with rewritten hyperlinks on
    /// next request. Returns the dirtied document names (sorted, for
    /// deterministic callers).
    pub fn migrate(&mut self, name: &str, coop: ServerId, now_ms: u64) -> Vec<DocName> {
        let Some(entry) = self.docs.get_mut(name) else {
            return Vec::new();
        };
        entry.location = Location::Coop(coop);
        entry.migrated_at = Some(now_ms);
        let mut sources = entry.link_from.clone();
        sources.sort();
        for s in &sources {
            if let Some(se) = self.docs.get_mut(s) {
                se.dirty = true;
            }
        }
        sources
    }

    /// Revoke a migration (§4.5): the document returns home and its
    /// `LinkFrom` documents are dirtied again so links point back. Returns
    /// the dirtied names.
    pub fn revoke(&mut self, name: &str) -> Vec<DocName> {
        let Some(entry) = self.docs.get_mut(name) else {
            return Vec::new();
        };
        if entry.location.is_home() {
            return Vec::new();
        }
        entry.location = Location::Home;
        entry.migrated_at = None;
        let mut sources = entry.link_from.clone();
        sources.sort();
        for s in &sources {
            if let Some(se) = self.docs.get_mut(s) {
                se.dirty = true;
            }
        }
        sources
    }

    /// All documents currently migrated to `coop`.
    pub fn migrated_to(&self, coop: &ServerId) -> Vec<DocName> {
        let mut v: Vec<DocName> = self
            .docs
            .values()
            .filter(|e| matches!(&e.location, Location::Coop(c) if c == coop))
            .map(|e| e.name.clone())
            .collect();
        v.sort();
        v
    }

    /// All documents not at home, with their co-op servers.
    pub fn all_migrated(&self) -> Vec<(DocName, ServerId)> {
        let mut v: Vec<(DocName, ServerId)> = self
            .docs
            .values()
            .filter_map(|e| match &e.location {
                Location::Coop(c) => Some((e.name.clone(), c.clone())),
                Location::Home => None,
            })
            .collect();
        v.sort();
        v
    }

    /// Check the LinkTo/LinkFrom symmetry invariant; returns the first
    /// violation found, if any. Used by tests.
    pub fn check_symmetry(&self) -> Option<String> {
        for e in self.docs.values() {
            for t in &e.link_to {
                if let Some(te) = self.docs.get(t) {
                    if !te.link_from.contains(&e.name) {
                        return Some(format!("{} -> {} missing back edge", e.name, t));
                    }
                }
            }
            for s in &e.link_from {
                match self.docs.get(s) {
                    Some(se) => {
                        if !se.link_to.contains(&e.name) {
                            return Some(format!("{} <- {} stale back edge", e.name, s));
                        }
                    }
                    None => return Some(format!("{} <- {} dangling source", e.name, s)),
                }
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn graph() -> LocalDocGraph {
        // The Figure 1/2 example: A->C, B->{D,E}, E->D.
        let mut g = LocalDocGraph::new();
        g.insert_doc("A", 100, DocKind::Html, vec!["C".into()], true);
        g.insert_doc("B", 100, DocKind::Html, vec!["D".into(), "E".into()], true);
        g.insert_doc("C", 100, DocKind::Html, vec![], false);
        g.insert_doc("D", 100, DocKind::Html, vec![], false);
        g.insert_doc("E", 100, DocKind::Html, vec!["D".into()], false);
        g
    }

    #[test]
    fn link_from_derived() {
        let g = graph();
        assert_eq!(g.get("C").unwrap().link_from, vec!["A".to_string()]);
        let mut df = g.get("D").unwrap().link_from.clone();
        df.sort();
        assert_eq!(df, vec!["B".to_string(), "E".to_string()]);
        assert!(g.get("A").unwrap().link_from.is_empty());
        assert!(g.check_symmetry().is_none());
    }

    #[test]
    fn forward_links_resolve_on_late_insert() {
        let mut g = LocalDocGraph::new();
        g.insert_doc("X", 1, DocKind::Html, vec!["Y".into()], false);
        assert!(g.get("Y").is_none());
        g.insert_doc("Y", 1, DocKind::Html, vec![], false);
        assert_eq!(g.get("Y").unwrap().link_from, vec!["X".to_string()]);
        assert!(g.check_symmetry().is_none());
    }

    #[test]
    fn migrate_sets_dirty_on_sources_like_figure_2() {
        let mut g = graph();
        let dirtied = g.migrate("D", ServerId::new("#2"), 1000);
        assert_eq!(dirtied, vec!["B".to_string(), "E".to_string()]);
        assert!(g.get("B").unwrap().dirty);
        assert!(g.get("E").unwrap().dirty);
        assert!(!g.get("A").unwrap().dirty);
        assert!(
            !g.get("D").unwrap().dirty,
            "the migrated doc itself is not dirty"
        );
        assert_eq!(
            g.get("D").unwrap().location,
            Location::Coop(ServerId::new("#2"))
        );
        assert_eq!(g.get("D").unwrap().migrated_at, Some(1000));
    }

    #[test]
    fn revoke_restores_home_and_dirties() {
        let mut g = graph();
        g.migrate("D", ServerId::new("#2"), 0);
        g.get_mut("B").unwrap().dirty = false;
        g.get_mut("E").unwrap().dirty = false;
        let dirtied = g.revoke("D");
        assert_eq!(dirtied, vec!["B".to_string(), "E".to_string()]);
        assert!(g.get("D").unwrap().location.is_home());
        assert_eq!(g.get("D").unwrap().migrated_at, None);
        // Revoking a home document is a no-op.
        assert!(g.revoke("D").is_empty());
    }

    #[test]
    fn hit_windows_rotate() {
        let mut g = graph();
        g.record_hit("C", 512);
        g.record_hit("C", 512);
        assert_eq!(g.get("C").unwrap().hits, 0, "window not closed yet");
        g.rotate_hits();
        assert_eq!(g.get("C").unwrap().hits, 2);
        assert_eq!(g.get("C").unwrap().hits_total, 2);
        g.rotate_hits();
        assert_eq!(g.get("C").unwrap().hits, 0, "fresh window had no hits");
        assert_eq!(g.get("C").unwrap().hits_total, 2);
    }

    #[test]
    fn hit_on_unknown_doc_ignored() {
        let mut g = graph();
        g.record_hit("nope", 1);
        assert!(g.check_symmetry().is_none());
    }

    #[test]
    fn remote_link_from_counts() {
        let mut g = graph();
        assert_eq!(g.get("D").unwrap().remote_link_from(&g), 0);
        g.migrate("E", ServerId::new("#2"), 0);
        // Now E (a source of D) is remote.
        assert_eq!(g.get("D").unwrap().remote_link_from(&g), 1);
    }

    #[test]
    fn migrated_to_lists() {
        let mut g = graph();
        let s2 = ServerId::new("#2");
        g.migrate("D", s2.clone(), 0);
        g.migrate("E", s2.clone(), 0);
        assert_eq!(g.migrated_to(&s2), vec!["D".to_string(), "E".to_string()]);
        assert_eq!(
            g.all_migrated(),
            vec![("D".to_string(), s2.clone()), ("E".to_string(), s2)]
        );
    }

    #[test]
    fn reinsert_preserves_hits_and_updates_edges() {
        let mut g = graph();
        g.record_hit("E", 1);
        g.rotate_hits();
        // Author edits E to drop its link to D and link to C instead.
        g.insert_doc("E", 200, DocKind::Html, vec!["C".into()], false);
        assert_eq!(g.get("E").unwrap().hits, 1, "hit history preserved");
        assert_eq!(g.get("E").unwrap().size, 200);
        assert!(!g.get("D").unwrap().link_from.contains(&"E".to_string()));
        let mut cf = g.get("C").unwrap().link_from.clone();
        cf.sort();
        assert_eq!(cf, vec!["A".to_string(), "E".to_string()]);
        assert!(g.check_symmetry().is_none());
    }

    #[test]
    fn remove_doc_retracts_edges() {
        let mut g = graph();
        g.remove_doc("D").unwrap();
        assert!(!g.contains("D"));
        assert!(!g.get("B").unwrap().link_to.contains(&"D".to_string()));
        assert!(!g.get("E").unwrap().link_to.contains(&"D".to_string()));
        assert!(g.check_symmetry().is_none());
        assert!(g.remove_doc("D").is_none());
    }

    #[test]
    fn migrate_unknown_doc_is_noop() {
        let mut g = graph();
        assert!(g.migrate("nope", ServerId::new("x"), 0).is_empty());
    }

    #[test]
    fn self_link_is_tolerated() {
        let mut g = LocalDocGraph::new();
        g.insert_doc("S", 1, DocKind::Html, vec!["S".into()], false);
        assert_eq!(g.get("S").unwrap().link_from, vec!["S".to_string()]);
        assert!(g.check_symmetry().is_none());
        let dirtied = g.migrate("S", ServerId::new("c"), 0);
        assert_eq!(dirtied, vec!["S".to_string()]);
    }
}
