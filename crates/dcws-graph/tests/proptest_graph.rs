//! Property-based tests for LDG invariants, GLT merge semantics, and
//! Algorithm 1 safety.

use dcws_graph::{
    select_for_migration, DocKind, GlobalLoadTable, LoadInfo, LocalDocGraph, Location, RateWindow,
    ServerId,
};
use proptest::prelude::*;

/// A random graph spec: per document, a list of link target indices, an
/// entry-point flag, and a hit count.
fn graph_spec() -> impl Strategy<Value = Vec<(Vec<usize>, bool, u64)>> {
    proptest::collection::vec(
        (
            proptest::collection::vec(0usize..20, 0..6),
            any::<bool>(),
            0u64..500,
        ),
        1..20,
    )
}

fn build(spec: &[(Vec<usize>, bool, u64)]) -> LocalDocGraph {
    let mut g = LocalDocGraph::new();
    let n = spec.len();
    for (i, (links, entry, hits)) in spec.iter().enumerate() {
        let link_to: Vec<String> = links
            .iter()
            .filter(|&&t| t < n)
            .map(|t| format!("/doc{t}.html"))
            .collect();
        g.insert_doc(
            format!("/doc{i}.html"),
            1000,
            DocKind::Html,
            link_to,
            *entry,
        );
        for _ in 0..*hits {
            g.record_hit(&format!("/doc{i}.html"), 1000);
        }
    }
    g.rotate_hits();
    g
}

proptest! {
    #[test]
    fn ldg_symmetry_holds_after_build(spec in graph_spec()) {
        let g = build(&spec);
        prop_assert!(g.check_symmetry().is_none());
    }

    #[test]
    fn ldg_symmetry_survives_mutations(
        spec in graph_spec(),
        ops in proptest::collection::vec((0usize..20, 0u8..3), 0..15),
    ) {
        let mut g = build(&spec);
        for (idx, op) in ops {
            let name = format!("/doc{idx}.html");
            match op {
                0 => { g.migrate(&name, ServerId::new("c:1"), 0); }
                1 => { g.revoke(&name); }
                _ => { g.remove_doc(&name); }
            }
            prop_assert!(g.check_symmetry().is_none(), "after op {op} on {name}");
        }
    }

    #[test]
    fn algorithm1_never_selects_entry_point_or_migrated(
        spec in graph_spec(),
        migrations in proptest::collection::vec(0usize..20, 0..5),
        threshold in 0u64..600,
    ) {
        let mut g = build(&spec);
        for m in migrations {
            g.migrate(&format!("/doc{m}.html"), ServerId::new("c:1"), 0);
        }
        if let Some(pick) = select_for_migration(&g, threshold) {
            let e = g.get(&pick).unwrap();
            prop_assert!(!e.entry_point, "selected entry point {pick}");
            prop_assert!(e.location.is_home(), "selected migrated doc {pick}");
        } else {
            // None is only allowed when no eligible doc exists.
            let eligible = g.iter().any(|e| e.location.is_home() && !e.entry_point);
            prop_assert!(!eligible);
        }
    }

    #[test]
    fn algorithm1_pick_meets_effective_threshold(
        spec in graph_spec(),
        threshold in 1u64..600,
    ) {
        let g = build(&spec);
        if let Some(pick) = select_for_migration(&g, threshold) {
            // The pick's hits must be >= some halving of the threshold that
            // leaves at least one survivor — in particular, no eligible doc
            // can be strictly hotter than 2x the pick unless it lost on
            // steps 4/5. Weak but meaningful: the pick is never a zero-hit
            // doc while a >=threshold doc was eligible on the same step-4
            // cost tier. We check the simpler invariant: if any eligible
            // doc meets the original threshold, the pick does too.
            let any_hot = g.iter().any(|e| {
                e.location.is_home() && !e.entry_point && e.hits >= threshold
            });
            if any_hot {
                prop_assert!(g.get(&pick).unwrap().hits >= threshold);
            }
        }
    }

    #[test]
    fn glt_merge_is_commutative_and_idempotent(
        reports in proptest::collection::vec(
            (0u8..5, 0.0f64..100.0, 0.0f64..1e7, 0u64..1000),
            1..20,
        ),
    ) {
        let mk = |order: &[(u8, f64, f64, u64)]| {
            let mut t = GlobalLoadTable::new(ServerId::new("me:1"));
            for (s, cps, bps, ts) in order {
                t.update(
                    ServerId::new(format!("s{s}:1")),
                    LoadInfo { cps: *cps, bps: *bps, ts_ms: *ts },
                );
            }
            t.snapshot()
        };
        let forward = mk(&reports);
        let mut rev = reports.clone();
        rev.reverse();
        let backward = mk(&rev);
        // Same max-ts winner per server regardless of arrival order, as
        // long as timestamps are distinct per server; with equal ts the
        // first writer wins, so compare only ts values which are always
        // order-independent.
        let ts_of = |snap: &[(ServerId, LoadInfo)]| -> Vec<(String, u64)> {
            snap.iter().map(|(s, i)| (s.to_string(), i.ts_ms)).collect()
        };
        prop_assert_eq!(ts_of(&forward), ts_of(&backward));

        // Idempotence: re-applying everything changes nothing.
        let mut t = GlobalLoadTable::new(ServerId::new("me:1"));
        for (s, cps, bps, ts) in &reports {
            t.update(ServerId::new(format!("s{s}:1")), LoadInfo { cps: *cps, bps: *bps, ts_ms: *ts });
        }
        let once = t.snapshot();
        for (s, cps, bps, ts) in &reports {
            t.update(ServerId::new(format!("s{s}:1")), LoadInfo { cps: *cps, bps: *bps, ts_ms: *ts });
        }
        prop_assert_eq!(once, t.snapshot());
    }

    #[test]
    fn rate_window_total_conservation(
        events in proptest::collection::vec((0u64..10_000, 1u64..1000), 0..100),
    ) {
        // All events within the window span are counted exactly once.
        let mut sorted = events.clone();
        sorted.sort();
        let mut w = RateWindow::new(20_000, 20);
        let mut total = 0u64;
        let mut last_t = 0;
        for (t, bytes) in &sorted {
            w.record(*t, *bytes);
            total += 1;
            last_t = *t;
        }
        prop_assert_eq!(w.connections(last_t), total);
    }

    #[test]
    fn migrate_then_revoke_restores_location(spec in graph_spec(), idx in 0usize..20) {
        let mut g = build(&spec);
        let name = format!("/doc{idx}.html");
        if !g.contains(&name) { return Ok(()); }
        let before_dirty: Vec<bool> = g.iter().map(|e| e.dirty).collect();
        let _ = before_dirty;
        g.migrate(&name, ServerId::new("c:1"), 7);
        prop_assert_eq!(
            g.get(&name).unwrap().location.clone(),
            Location::Coop(ServerId::new("c:1"))
        );
        g.revoke(&name);
        prop_assert!(g.get(&name).unwrap().location.is_home());
        prop_assert!(g.check_symmetry().is_none());
    }
}
