#!/usr/bin/env bash
# Full local quality gate: everything CI runs, in the same order.
#
#   scripts/check.sh            # build + test + fmt + clippy + doc
#   scripts/check.sh --quick    # skip the release build (fastest loop)
#
# The workspace builds fully offline: every external dependency is a
# vendored stub under vendor/ (see vendor/README.md), so no step here
# needs the crates registry.

set -euo pipefail
cd "$(dirname "$0")/.."

quick=0
[[ "${1:-}" == "--quick" ]] && quick=1

step() {
    echo
    echo "==> $*"
    "$@"
}

if [[ $quick -eq 0 ]]; then
    step cargo build --workspace --release
fi
step cargo test -q --workspace

# Chaos smoke: a real 3-server TCP cluster under the fixed-seed fault
# schedule (seeds 7/21/1999 inside the test) must converge with no
# document lost. Named explicitly so a chaos regression is visible as
# its own step, and reproducible from the printed seed
# (docs/RESILIENCE.md).
step cargo test -q -p dcws-net --test chaos_tests seeded_chaos_no_document_lost

step cargo fmt --all --check
step cargo clippy --workspace --all-targets -- -D warnings
step env RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps

# Bench-binary smoke: the figure harnesses, the cache-pressure sweep,
# and the contention sweeps must run end to end and emit their CSVs
# (quick mode keeps this fast). lockpress --quick runs 2 worker points
# on a short clock so lock regressions fail here, not in production;
# connpress --quick additionally exits nonzero if the pooled arm's
# connection reuse ratio is <= 0.9, so a silently disabled pool fails
# the gate; c10kpress --quick holds 1k keep-alive clients against the
# reactor front end and exits nonzero unless served concurrency beats
# the worker count with zero accept errors, so an event-loop
# regression fails here too; bigpress --quick serves a 2.8 MB corpus
# streamed vs buffered and exits nonzero unless streamed TTFB beats
# buffered and the cache admission rule protects the small-doc
# working set, so a broken streaming path fails the gate; scalepress
# --quick runs the simulator at 240 servers / 3,000 clients and exits
# nonzero unless every arm clears 10^5 sessions inside the wall-clock
# bound and the shared-bandwidth re-run reproduces its digest exactly,
# so an event-core scale or determinism regression fails the gate
# (docs/SIMULATION.md); corepress --quick sweeps reactor shards ×
# {vectored, copy} write paths and exits nonzero unless every vectored
# arm served with zero per-serve body copies (counter assertion) and —
# on hosts with >= 4 cores — the 4-shard arm beats 1.5× the 1-shard
# CPS, so a broken zero-copy path or an inert shard toggle fails here.
if [[ $quick -eq 0 ]]; then
    step env DCWS_BENCH_QUICK=1 cargo run --release -q -p dcws-bench --bin fig6 -- --status-dump
    step env DCWS_BENCH_QUICK=1 cargo run --release -q -p dcws-bench --bin cachepress -- --status-dump
    step cargo run --release -q -p dcws-bench --bin lockpress -- --quick
    step cargo run --release -q -p dcws-bench --bin connpress -- --quick
    step cargo run --release -q -p dcws-bench --bin c10kpress -- --quick
    step cargo run --release -q -p dcws-bench --bin bigpress -- --quick
    step cargo run --release -q -p dcws-bench --bin scalepress -- --quick
    step cargo run --release -q -p dcws-bench --bin corepress -- --quick
    test -s bench_results/fig6.csv
    test -s bench_results/cachepress.csv
    test -s bench_results/lockpress.csv
    test -s bench_results/BENCH_lockpress.json
    test -s bench_results/connpress.csv
    test -s bench_results/BENCH_connpress.json
    test -s bench_results/c10kpress.csv
    test -s bench_results/BENCH_c10kpress.json
    test -s bench_results/bigpress.csv
    test -s bench_results/BENCH_bigpress.json
    test -s bench_results/scalepress.csv
    test -s bench_results/BENCH_scalepress.json
    test -s bench_results/corepress.csv
    test -s bench_results/BENCH_corepress.json
fi

echo
echo "All checks passed."
