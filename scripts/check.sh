#!/usr/bin/env bash
# Full local quality gate: everything CI runs, in the same order.
#
#   scripts/check.sh            # build + test + fmt + clippy + doc
#   scripts/check.sh --quick    # skip the release build (fastest loop)
#
# The workspace builds fully offline: every external dependency is a
# vendored stub under vendor/ (see vendor/README.md), so no step here
# needs the crates registry.

set -euo pipefail
cd "$(dirname "$0")/.."

quick=0
[[ "${1:-}" == "--quick" ]] && quick=1

step() {
    echo
    echo "==> $*"
    "$@"
}

if [[ $quick -eq 0 ]]; then
    step cargo build --workspace --release
fi
step cargo test -q --workspace
step cargo fmt --all --check
step cargo clippy --workspace --all-targets -- -D warnings
step env RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps

echo
echo "All checks passed."
