//! # DCWS — Distributed Cooperative Web Server
//!
//! A complete Rust implementation of *"Scalable Web Server Design for
//! Distributed Data Management"* (Scott M. Baker & Bongki Moon, Univ. of
//! Arizona TR 98-8 / ICDE 1999): application-level web-server load
//! balancing by **dynamic hyperlink rewriting** — no router, no custom
//! DNS, no shared filesystem.
//!
//! This crate is the facade over the workspace:
//!
//! | Crate | Contents |
//! |-------|----------|
//! | [`http`] | HTTP/1.x substrate: messages, incremental parser, `X-DCWS-Load` piggyback codec |
//! | [`html`] | HTML substrate: tokenizer, parse tree, link extraction, hyperlink rewriting |
//! | [`graph`] | Local Document Graph, Global Load Table, load metrics, Algorithm 1 |
//! | [`core`] | The sans-IO DCWS engine: migration, regeneration, redirects, consistency timers |
//! | [`net`] | Real threaded TCP transport (front-end / workers / pinger) |
//! | [`sim`] | Discrete-event cluster simulator replacing the paper's 64-node testbed |
//! | [`workloads`] | Calibrated synthetic recreations of the four paper datasets |
//! | [`baselines`] | Round-robin DNS, central TCP router, and single-server comparators |
//!
//! ## Quickstart
//!
//! Run two cooperating servers on localhost and watch a document migrate:
//!
//! ```bash
//! cargo run --example quickstart
//! ```
//!
//! Reproduce the paper's figures:
//!
//! ```bash
//! cargo run --release -p dcws-bench --bin fig6
//! cargo run --release -p dcws-bench --bin fig7
//! cargo run --release -p dcws-bench --bin fig8
//! ```

#![warn(missing_docs)]

pub use dcws_baselines as baselines;
pub use dcws_core as core;
pub use dcws_graph as graph;
pub use dcws_html as html;
pub use dcws_http as http;
pub use dcws_net as net;
pub use dcws_sim as sim;
pub use dcws_workloads as workloads;

/// Version of the DCWS workspace.
pub const VERSION: &str = env!("CARGO_PKG_VERSION");

#[cfg(test)]
mod tests {
    #[test]
    fn facade_reexports_compile() {
        let _ = crate::VERSION;
        let _ = crate::core::ServerConfig::paper_defaults();
        let _ = crate::graph::LocalDocGraph::new();
    }
}
